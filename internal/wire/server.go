package wire

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/expr"
	"repro/internal/monitor"
	"repro/internal/score"
)

// LiveIngest is the append surface shared by core.LiveEngine and
// core.LiveShardedEngine: the server ingests wire append batches through it
// and reports the online monitor's verdicts when enabled.
type LiveIngest interface {
	Append(t int64, attrs []float64) (monitor.Decision, []monitor.Confirmation, error)
	Monitored() bool
}

// Server hosts durable top-k engines over named datasets and answers wire
// requests. Engines are built once at registration; queries on one engine
// run concurrently. The zero value is not usable; construct with NewServer.
type Server struct {
	logf func(format string, args ...interface{})

	mu     sync.RWMutex
	sets   map[string]*served
	closed bool

	lnMu  sync.Mutex
	lns   map[net.Listener]struct{}
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	// connTimeout (nanoseconds; 0 = none) bounds each read and each write on
	// a connection, so a stalled or vanished client cannot pin a handler
	// goroutine forever.
	connTimeout atomic.Int64
	// draining flips when Close starts: connection loops finish the request
	// in flight (its response is still written), then exit instead of
	// reading the next frame.
	draining atomic.Bool
}

type served struct {
	eng   core.Querier
	attrs []string
	// live is non-nil for datasets registered with AddLive or
	// AddLiveSharded; it is the same engine as eng, retyped for the
	// ingestion surface.
	live LiveIngest
	// ingesting marks a live dataset currently fed by a server-side stream
	// (durserved -ingest); wire appends are rejected while it is set, since
	// an external producer interleaving its own (later) timestamps would
	// make the stream's next record non-increasing and kill the feed. The
	// lockout is advisory against appends already in flight when the flag
	// flips (checked before each row, not atomically with it); set it
	// before serving connections for a hard guarantee.
	ingesting atomic.Bool
}

// NewServer returns an empty server. logf (nil = log.Printf) receives
// per-connection protocol errors; request errors are reported to clients,
// not logged.
func NewServer(logf func(format string, args ...interface{})) *Server {
	if logf == nil {
		logf = log.Printf
	}
	return &Server{
		logf:  logf,
		sets:  make(map[string]*served),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// SetConnTimeout bounds each frame read and each response write on every
// connection (zero disables, the default). An idle client is disconnected
// after d without a request; a client that stops draining responses is
// disconnected after its write stalls for d. Applies to connections accepted
// after the call.
func (s *Server) SetConnTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.connTimeout.Store(int64(d))
}

// Add registers ds under name, building its engine. attrs optionally names
// the dataset's attribute columns for use in scoring expressions; it may be
// nil (positional x0, x1, … always work).
func (s *Server) Add(name string, ds *data.Dataset, attrs []string, opts core.Options) error {
	return s.add(name, ds, attrs, func() core.Querier { return core.NewEngine(ds, opts) })
}

// AddSharded registers ds under name backed by a time-sharded engine: one
// independent engine per contiguous time shard, queries fanned out on a
// bounded worker pool (see core.ShardedEngine). The wire contract is
// identical to Add — same requests, same answers.
func (s *Server) AddSharded(name string, ds *data.Dataset, attrs []string, opts core.Options, shards core.ShardOptions) error {
	return s.add(name, ds, attrs, func() core.Querier { return core.NewShardedEngine(ds, opts, shards) })
}

// AddQuerier registers an already-built engine (either flavor) under name;
// use it when the caller needs the engine handle too (e.g. to report the
// shard layout actually built).
func (s *Server) AddQuerier(name string, eng core.Querier, attrs []string) error {
	return s.add(name, eng.Dataset(), attrs, func() core.Querier { return eng })
}

// AddLive registers an empty live dataset of the given dimensionality under
// name and returns its engine. The dataset grows through append requests on
// the wire (OpAppend) or direct LiveEngine.Append calls by the embedder;
// queries serve whatever has been ingested so far, exactly as a batch engine
// over the same records would answer them.
func (s *Server) AddLive(name string, dims int, attrs []string, opts core.Options, live core.LiveOptions) (*core.LiveEngine, error) {
	le, err := core.NewLiveEngine(dims, opts, live)
	if err != nil {
		return nil, err
	}
	// The entry is inserted fully initialized (live set before publication),
	// so a concurrent append can never observe a registered-but-not-live
	// window.
	if err := s.addEntry(name, le.Dataset(), attrs, func() *served {
		return &served{eng: le, attrs: attrs, live: le}
	}); err != nil {
		return nil, err
	}
	return le, nil
}

// AddLiveSharded registers an empty live+sharded dataset of the given
// dimensionality under name and returns its engine: appends route to a
// mutable tail shard that seals into immutable static shards per the
// LiveShardOptions lifecycle (see core.LiveShardedEngine). The wire contract
// is identical to AddLive — same append and query requests, same answers —
// only the serving engine's scaling behavior differs.
func (s *Server) AddLiveSharded(name string, dims int, attrs []string, opts core.Options, live core.LiveOptions, shards core.LiveShardOptions) (*core.LiveShardedEngine, error) {
	lse, err := core.NewLiveShardedEngine(dims, opts, live, shards)
	if err != nil {
		return nil, err
	}
	if err := s.addEntry(name, lse.Dataset(), attrs, func() *served {
		return &served{eng: lse, attrs: attrs, live: lse}
	}); err != nil {
		return nil, err
	}
	return lse, nil
}

// AddLiveQuerier registers an already-built live engine under name with a
// custom ingestion surface: queries answer from eng while wire appends route
// through ingest. Use it when appends must pass through a wrapper around the
// engine — e.g. a crash-safe store that write-ahead logs each row before the
// engine it serves queries from applies it.
func (s *Server) AddLiveQuerier(name string, eng core.Querier, ingest LiveIngest, attrs []string) error {
	if ingest == nil {
		return errors.New("wire: AddLiveQuerier needs a non-nil ingest surface")
	}
	return s.addEntry(name, eng.Dataset(), attrs, func() *served {
		return &served{eng: eng, attrs: attrs, live: ingest}
	})
}

func (s *Server) add(name string, ds *data.Dataset, attrs []string, build func() core.Querier) error {
	return s.addEntry(name, ds, attrs, func() *served {
		return &served{eng: build(), attrs: attrs}
	})
}

func (s *Server) addEntry(name string, ds *data.Dataset, attrs []string, build func() *served) error {
	if name == "" {
		return errors.New("wire: dataset name must not be empty")
	}
	if attrs != nil && len(attrs) != ds.Dims() {
		return fmt.Errorf("wire: %d attribute names for %d dimensions", len(attrs), ds.Dims())
	}
	// Validate names eagerly so registration, not the first query, fails.
	if _, err := expr.Compile("1", expr.Options{Dims: ds.Dims(), Names: attrs}); err != nil {
		return fmt.Errorf("wire: attribute names: %w", err)
	}
	// Reject duplicates before building: index construction (especially
	// per-shard) is far too expensive to discard. The name is re-checked
	// under the same lock that inserts it, so concurrent registrations of
	// one name still resolve to a single winner.
	s.mu.Lock()
	_, dup := s.sets[name]
	s.mu.Unlock()
	if dup {
		return fmt.Errorf("wire: dataset %q already registered", name)
	}
	sv := build()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sets[name]; dup {
		return fmt.Errorf("wire: dataset %q already registered", name)
	}
	s.sets[name] = sv
	return nil
}

// Serve accepts connections on ln until the listener or server closes.
// It always returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.lns[ln] = struct{}{}
	s.lnMu.Unlock()
	defer func() {
		s.lnMu.Lock()
		delete(s.lns, ln)
		s.lnMu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops all listeners and shuts down gracefully: connections finish
// (and get the response for) the request they are handling, but no further
// requests are read. Idle connections — blocked waiting for a client frame —
// are unblocked immediately rather than waited on.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.lnMu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for conn := range s.conns {
		// Expire pending reads so idle connection loops wake up and see the
		// draining flag. In-flight handlers are untouched: their response
		// write carries its own deadline and still completes.
		conn.SetReadDeadline(time.Now())
	}
	s.lnMu.Unlock()
	s.wg.Wait()
	return nil
}

// ServeConn answers requests on one connection until EOF, a protocol error,
// a deadline (SetConnTimeout) or server shutdown; it closes conn before
// returning. Exported so tests and embedders can drive the protocol over
// net.Pipe.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		return
	}
	s.conns[conn] = struct{}{}
	s.lnMu.Unlock()
	defer func() {
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.lnMu.Unlock()
	}()
	timeout := time.Duration(s.connTimeout.Load())
	for {
		// Deadline before the draining check: if Close lands between the two,
		// its SetReadDeadline(now) overrides this one and the read below
		// returns immediately, so shutdown never waits a full idle timeout.
		if timeout > 0 {
			conn.SetReadDeadline(time.Now().Add(timeout))
		}
		if s.draining.Load() {
			return
		}
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			switch {
			case errors.Is(err, net.ErrClosed), errors.Is(err, io.EOF):
			case s.draining.Load():
				// Shutdown expired the deadline; not a client failure.
			case isTimeout(err):
				s.logf("wire: %s: closing idle connection after %v", conn.RemoteAddr(), timeout)
			default:
				s.logf("wire: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.handle(&req)
		if timeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(timeout))
		}
		if err := WriteFrame(conn, resp); err != nil {
			s.logf("wire: %s: write: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func errResponse(err error) *Response {
	return &Response{V: Version, Error: err.Error()}
}

func (s *Server) handle(req *Request) *Response {
	if req.V != Version {
		return errResponse(fmt.Errorf("%w: %d (want %d)", ErrBadVersion, req.V, Version))
	}
	switch req.Op {
	case OpPing:
		return &Response{V: Version, OK: true}
	case OpDatasets:
		return s.handleDatasets()
	case OpQuery:
		return s.handleQuery(req)
	case OpExplain:
		return s.handleExplain(req)
	case OpMostDurable:
		return s.handleMostDurable(req)
	case OpAppend:
		return s.handleAppend(req)
	default:
		return errResponse(fmt.Errorf("wire: unknown op %q", req.Op))
	}
}

func (s *Server) handleDatasets() *Response {
	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := &Response{V: Version, OK: true}
	names := make([]string, 0, len(s.sets))
	for name := range s.sets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sv := s.sets[name]
		ds := sv.eng.Dataset()
		lo, hi := ds.Span()
		shards := 0
		switch eng := sv.eng.(type) {
		case *core.ShardedEngine:
			shards = eng.NumShards()
		case *core.LiveShardedEngine:
			shards = eng.NumShards()
		}
		resp.Datasets = append(resp.Datasets, DatasetInfo{
			Name: name, Len: ds.Len(), Dims: ds.Dims(),
			Start: lo, End: hi, Attrs: sv.attrs, Live: sv.live != nil,
			Shards: shards,
		})
	}
	return resp
}

// lookup resolves the served dataset of a request.
func (s *Server) lookup(name string) (*served, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sv, ok := s.sets[name]
	if !ok {
		return nil, fmt.Errorf("wire: unknown dataset %q", name)
	}
	return sv, nil
}

// buildQuery translates the request into a core.Query against sv.
func buildQuery(req *Request, sv *served) (core.Query, error) {
	var q core.Query
	ds := sv.eng.Dataset()
	scorer, err := requestScorer(req, sv)
	if err != nil {
		return q, err
	}
	alg := core.Auto
	if req.Algorithm != "" && req.Algorithm != "auto" {
		alg, err = core.ParseAlgorithm(req.Algorithm)
		if err != nil {
			return q, err
		}
	}
	anchor := core.LookBack
	switch req.Anchor {
	case "", "look-back":
	case "look-ahead":
		anchor = core.LookAhead
	case "general":
		anchor = core.General
	default:
		return q, fmt.Errorf("wire: unknown anchor %q", req.Anchor)
	}
	start, end := req.Start, req.End
	if start == 0 && end == 0 {
		start, end = ds.Span()
	}
	return core.Query{
		K: req.K, Tau: req.Tau, Lead: req.Lead, Start: start, End: end,
		Scorer: scorer, Algorithm: alg, Anchor: anchor,
		WithDurations: req.WithDurations,
	}, nil
}

// requestScorer resolves the request's scoring function.
func requestScorer(req *Request, sv *served) (score.Scorer, error) {
	ds := sv.eng.Dataset()
	switch {
	case len(req.Weights) > 0 && req.Expr != "":
		return nil, errors.New("wire: weights and expr are mutually exclusive")
	case len(req.Weights) > 0:
		return score.NewLinear(req.Weights)
	case req.Expr != "":
		return expr.Compile(req.Expr, expr.Options{Dims: ds.Dims(), Names: sv.attrs})
	default:
		return nil, errors.New("wire: query needs weights or expr")
	}
}

func (s *Server) handleQuery(req *Request) *Response {
	sv, err := s.lookup(req.Dataset)
	if err != nil {
		return errResponse(err)
	}
	q, err := buildQuery(req, sv)
	if err != nil {
		return errResponse(err)
	}
	res, err := sv.eng.DurableTopK(q)
	if err != nil {
		return errResponse(err)
	}
	resp := &Response{V: Version, OK: true, Stats: &Stats{
		Algorithm:      res.Stats.Algorithm.String(),
		CheckQueries:   res.Stats.CheckQueries,
		FindQueries:    res.Stats.FindQueries,
		MaintQueries:   res.Stats.MaintQueries,
		CandidateCount: res.Stats.CandidateCount,
		Visited:        res.Stats.Visited,
		ElapsedMicros:  res.Stats.Elapsed.Microseconds(),
	}}
	resp.Records = make([]Record, 0, len(res.Records))
	for _, r := range res.Records {
		resp.Records = append(resp.Records, Record{
			ID: r.ID, Time: r.Time, Score: r.Score,
			MaxDuration: r.MaxDuration, FullHistory: r.FullHistory,
		})
	}
	return resp
}

func (s *Server) handleExplain(req *Request) *Response {
	sv, err := s.lookup(req.Dataset)
	if err != nil {
		return errResponse(err)
	}
	q, err := buildQuery(req, sv)
	if err != nil {
		return errResponse(err)
	}
	plan, err := sv.eng.Explain(q)
	if err != nil {
		return errResponse(err)
	}
	return &Response{V: Version, OK: true, Plan: plan.String()}
}

// SetIngesting marks (on) or clears (off) the named live dataset as being
// fed by a server-side ingest stream. While marked, wire append requests to
// it are rejected; queries are unaffected. Returns an error for unknown or
// non-live datasets.
func (s *Server) SetIngesting(name string, on bool) error {
	sv, err := s.lookup(name)
	if err != nil {
		return err
	}
	if sv.live == nil {
		return fmt.Errorf("wire: dataset %q is not live", name)
	}
	sv.ingesting.Store(on)
	return nil
}

// handleAppend ingests a batch of rows into a live dataset. Rows commit in
// order until the first invalid one; the response reports how many committed
// (so a partially rejected batch is visible to the producer) alongside the
// error, plus the online monitor's decisions and confirmations when the live
// dataset is monitored.
func (s *Server) handleAppend(req *Request) *Response {
	sv, err := s.lookup(req.Dataset)
	if err != nil {
		return errResponse(err)
	}
	if sv.live == nil {
		return errResponse(fmt.Errorf("wire: dataset %q is not live (register with AddLive to ingest)", req.Dataset))
	}
	if len(req.Rows) == 0 {
		return errResponse(errors.New("wire: append needs at least one row"))
	}
	resp := &Response{V: Version, OK: true}
	monitored := sv.live.Monitored()
	for _, row := range req.Rows {
		// Re-checked per row so a SetIngesting(true) that lands mid-batch
		// stops the batch at the next row. The lockout is still advisory
		// for rows already past the check (see the ingesting field's doc);
		// embedders that need a hard cut-over drain in-flight appends
		// before starting a feed, as durserved does by setting the flag
		// before serving.
		if sv.ingesting.Load() {
			resp.OK = false
			resp.Error = fmt.Sprintf("wire: dataset %q is being fed by a server-side ingest stream; appends are rejected until it drains", req.Dataset)
			resp.Transient = true // the feed drains; retrying is correct
			break
		}
		dec, confirms, err := sv.live.Append(row.Time, row.Attrs)
		if err != nil {
			resp.OK = false
			resp.Error = err.Error()
			break
		}
		resp.Appended++
		if !monitored {
			continue
		}
		resp.Decisions = append(resp.Decisions, LiveDecision{
			ID: dec.ID, Time: dec.Time, Durable: dec.Durable, Rank: dec.Rank,
		})
		for _, c := range confirms {
			resp.Confirms = append(resp.Confirms, LiveConfirmation{
				ID: c.ID, Time: c.Time, Durable: c.Durable, Beaten: c.Beaten, Truncated: c.Truncated,
			})
		}
	}
	return resp
}

// handleMostDurable answers the "stood the test of time" report: the N
// records with the largest maximum durability for the requested k, scorer
// and anchor. Mid-anchored windows have no duration notion and are
// rejected.
func (s *Server) handleMostDurable(req *Request) *Response {
	sv, err := s.lookup(req.Dataset)
	if err != nil {
		return errResponse(err)
	}
	scorer, err := requestScorer(req, sv)
	if err != nil {
		return errResponse(err)
	}
	anchor := core.LookBack
	switch req.Anchor {
	case "", "look-back":
	case "look-ahead":
		anchor = core.LookAhead
	default:
		return errResponse(fmt.Errorf("wire: most-durable supports look-back or look-ahead, not %q", req.Anchor))
	}
	if req.N < 1 {
		return errResponse(errors.New("wire: most-durable needs n >= 1"))
	}
	top, err := sv.eng.MostDurable(req.K, scorer, anchor, req.N)
	if err != nil {
		return errResponse(err)
	}
	resp := &Response{V: Version, OK: true}
	for _, r := range top {
		resp.Records = append(resp.Records, Record{
			ID: r.ID, Time: r.Time, Score: r.Score,
			MaxDuration: r.Duration, FullHistory: r.FullHistory,
		})
	}
	return resp
}
