package wire

import (
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/monitor"
	"repro/internal/score"
	"repro/internal/serve"
)

// startV2Server serves a monitored live dataset; pipelined when workers > 0.
func startV2Server(tb testing.TB, workers int) (*Server, string) {
	tb.Helper()
	srv := NewServer(func(string, ...interface{}) {})
	if workers > 0 {
		srv.SetScheduler(serve.NewScheduler(workers))
	}
	if _, err := srv.AddLive("stream", 2, []string{"points", "assists"}, core.Options{}, core.LiveOptions{
		MonitorK: 2, MonitorTau: 10, MonitorScorer: score.MustLinear(1, 1), TrackAhead: true,
	}); err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go srv.Serve(ln)
	tb.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func dialT(tb testing.TB, addr string) *Client {
	tb.Helper()
	cl, err := Dial(addr)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { cl.Close() })
	return cl
}

func TestHelloNegotiation(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, addr := startV2Server(t, workers)

			// A newer client is negotiated down to v2 and gets its features.
			cl := dialT(t, addr)
			v, feats, err := cl.Hello(FeatureEvents, "frobnicate")
			if err != nil {
				t.Fatal(err)
			}
			if v != Version2 {
				t.Fatalf("negotiated %d, want %d", v, Version2)
			}
			if !reflect.DeepEqual(feats, []string{FeatureEvents}) {
				t.Fatalf("accepted features %v, want [%s] (unknown flags must be dropped)", feats, FeatureEvents)
			}
			if !cl.V2() {
				t.Fatal("client did not record the v2 session")
			}
			// The old request surface keeps working on the upgraded session.
			if err := cl.Ping(); err != nil {
				t.Fatalf("ping after hello: %v", err)
			}
			if _, err := cl.Datasets(); err != nil {
				t.Fatalf("datasets after hello: %v", err)
			}
			// A second hello is a protocol error but not fatal.
			if _, _, err := cl.Hello(FeatureEvents); err == nil {
				t.Fatal("repeat hello accepted")
			}
			if err := cl.Ping(); err != nil {
				t.Fatalf("ping after rejected repeat hello: %v", err)
			}

			// A hello that only speaks v1 stays v1: no features, no upgrade.
			old := dialT(t, addr)
			resp, err := old.Do(Request{Op: OpHello, Features: []string{FeatureEvents}})
			if err != nil {
				t.Fatal(err)
			}
			if !resp.OK || resp.V != Version || len(resp.Features) != 0 {
				t.Fatalf("v1 hello response %+v, want ok v1 no features", resp)
			}
			if old.V2() {
				t.Fatal("v1 hello upgraded the client")
			}
			if err := old.Ping(); err != nil {
				t.Fatalf("ping after v1 hello: %v", err)
			}
		})
	}
}

// TestV1V2Interop is the compatibility matrix: v1 clients against the
// upgraded server are byte-for-byte undisturbed, and v2 sessions reject the
// subscription ops until negotiated.
func TestV1V2Interop(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, addr := startV2Server(t, workers)

			// Plain v1 client: appends and queries work; it never says hello.
			v1 := dialT(t, addr)
			if _, err := v1.Append("stream", []IngestRow{{Time: 1, Attrs: []float64{1, 2}}}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := v1.Query(Request{Dataset: "stream", QuerySpec: QuerySpec{K: 1, Tau: 5, Weights: []float64{1, 1}}}); err != nil {
				t.Fatal(err)
			}
			// v2 ops on a v1 connection are rejected, connection stays usable.
			if _, err := v1.do(Request{Op: OpSubscribe, Dataset: "stream",
				QuerySpec: QuerySpec{K: 1, Tau: 5, Weights: []float64{1, 1}}}); err == nil {
				t.Fatal("subscribe accepted without hello")
			}
			if _, err := v1.do(Request{Op: OpUnsubscribe, SubID: 1}); err == nil {
				t.Fatal("unsubscribe accepted without hello")
			}
			if err := v1.Ping(); err != nil {
				t.Fatalf("v1 connection broken after rejected v2 op: %v", err)
			}

			// Client-side guard mirrors it.
			if _, err := v1.Subscribe(Request{Dataset: "stream"}); err == nil {
				t.Fatal("client allowed Subscribe before Hello")
			}

			// A v2 session that did not offer the events feature cannot
			// subscribe.
			noEv := dialT(t, addr)
			if _, _, err := noEv.Hello(); err != nil {
				t.Fatal(err)
			}
			if _, err := noEv.Subscribe(Request{Dataset: "stream",
				QuerySpec: QuerySpec{K: 1, Tau: 5, Weights: []float64{1, 1}}}); err == nil {
				t.Fatal("subscribe accepted without the events feature")
			}

			// Full v2 session: v1 ops and v2 ops interleave on one connection.
			v2 := dialT(t, addr)
			if _, _, err := v2.Hello(FeatureEvents); err != nil {
				t.Fatal(err)
			}
			s, err := v2.Subscribe(Request{Dataset: "stream",
				QuerySpec: QuerySpec{K: 1, Tau: 5, Weights: []float64{1, 1}}})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := v2.Append("stream", []IngestRow{{Time: 2, Attrs: []float64{3, 1}}}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := v2.Query(Request{Dataset: "stream",
				QuerySpec: QuerySpec{K: 1, Tau: 5, Weights: []float64{1, 1}}}); err != nil {
				t.Fatal(err)
			}
			select {
			case ev := <-s.Events():
				if ev.SubID != s.ID() || ev.Prefix != 2 || ev.Decision == nil {
					t.Fatalf("event %+v, want decision at prefix 2", ev)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("no event for the append on the same connection")
			}
			if err := v2.Unsubscribe(s); err != nil {
				t.Fatal(err)
			}
			// Invalid subscribe requests answer errors without killing the
			// session.
			bad := []Request{
				{Dataset: "nope", QuerySpec: QuerySpec{K: 1, Tau: 5, Weights: []float64{1, 1}}},
				{Dataset: "stream", QuerySpec: QuerySpec{K: 1, Tau: 5, Weights: []float64{1, 1}, Anchor: "general"}},
				{Dataset: "stream", QuerySpec: QuerySpec{K: 1, Tau: 5, Weights: []float64{1, 1}, Lead: 3}},
				{Dataset: "stream", QuerySpec: QuerySpec{K: 0, Tau: 5, Weights: []float64{1, 1}}},
				{Dataset: "stream", QuerySpec: QuerySpec{K: 1, Tau: 5}},
			}
			for _, req := range bad {
				if _, err := v2.Subscribe(req); err == nil {
					t.Fatalf("invalid subscribe %+v accepted", req)
				}
			}
			if err := v2.Ping(); err != nil {
				t.Fatalf("session broken after rejected subscribes: %v", err)
			}
		})
	}
}

// TestSubscriptionLifecycle checks the event stream end to end on one
// serial connection pair: decisions and confirmations match a standalone
// monitor, the unsubscribe flush is truncated, and the channel closes.
func TestSubscriptionLifecycle(t *testing.T) {
	_, addr := startV2Server(t, 0)
	sub := dialT(t, addr)
	if _, _, err := sub.Hello(FeatureEvents); err != nil {
		t.Fatal(err)
	}
	s, err := sub.Subscribe(Request{Dataset: "stream",
		QuerySpec: QuerySpec{K: 2, Tau: 6, Weights: []float64{1, 0.5}}})
	if err != nil {
		t.Fatal(err)
	}

	feeder := dialT(t, addr)
	rng := rand.New(rand.NewSource(11))
	ref := newRefMonitor(t, 2, 6, score.MustLinear(1, 0.5))
	var tm int64
	for i := 0; i < 40; i++ {
		tm += int64(1 + rng.Intn(3))
		attrs := []float64{rng.Float64() * 10, rng.Float64() * 10}
		if _, err := feeder.Append("stream", []IngestRow{{Time: tm, Attrs: attrs}}); err != nil {
			t.Fatal(err)
		}
		wantDec, wantConfs := ref.observe(t, tm, attrs)
		select {
		case ev := <-s.Events():
			if ev.Prefix != i+1 {
				t.Fatalf("append %d: event prefix %d", i, ev.Prefix)
			}
			if ev.Decision == nil || *ev.Decision != wantDec {
				t.Fatalf("append %d: decision %+v, monitor says %+v", i, ev.Decision, wantDec)
			}
			if !reflect.DeepEqual(ev.Confirms, wantConfs) {
				t.Fatalf("append %d: confirms %+v, monitor says %+v", i, ev.Confirms, wantConfs)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("append %d: no event", i)
		}
	}

	wantFinal := ref.finish()
	if err := sub.Unsubscribe(s); err != nil {
		t.Fatal(err)
	}
	var final []Event
	for ev := range s.Events() {
		final = append(final, ev)
	}
	if len(wantFinal) == 0 {
		t.Fatal("test stream ended with nothing pending; raise tau")
	}
	if len(final) != 1 || !reflect.DeepEqual(final[0].Confirms, wantFinal) {
		t.Fatalf("final flush %+v, want confirms %+v", final, wantFinal)
	}
	if s.Dropped() != 0 {
		t.Fatalf("client dropped %d events", s.Dropped())
	}
}

// TestServerCloseDrainsEvents: a server Close mid-stream must still deliver
// the pending truncated confirmations to subscribers before their
// connections die.
func TestServerCloseDrainsEvents(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			srv, addr := startV2Server(t, workers)
			cl := dialT(t, addr)
			if _, _, err := cl.Hello(FeatureEvents); err != nil {
				t.Fatal(err)
			}
			// Huge tau: every append stays a pending look-ahead candidate.
			s, err := cl.Subscribe(Request{Dataset: "stream",
				QuerySpec: QuerySpec{K: 1, Tau: 1 << 40, Anchor: "look-ahead", Weights: []float64{1, 1}}})
			if err != nil {
				t.Fatal(err)
			}
			rows := make([]IngestRow, 8)
			for i := range rows {
				rows[i] = IngestRow{Time: int64(i + 1), Attrs: []float64{float64(i), 1}}
			}
			if _, err := cl.Append("stream", rows); err != nil {
				t.Fatal(err)
			}
			srv.Close()
			var confirms []LiveConfirmation
			deadline := time.After(5 * time.Second)
			for done := false; !done; {
				select {
				case ev, ok := <-s.Events():
					if !ok {
						done = true
						break
					}
					confirms = append(confirms, ev.Confirms...)
				case <-deadline:
					t.Fatal("subscription stream did not close after server shutdown")
				}
			}
			if len(confirms) != len(rows) {
				t.Fatalf("drained %d confirmations at shutdown, want %d", len(confirms), len(rows))
			}
			for _, c := range confirms {
				if !c.Truncated {
					t.Fatalf("shutdown confirmation not truncated: %+v", c)
				}
			}
		})
	}
}

// refMonitor mirrors the server's per-subscription monitor in wire types.
type refMonitor struct{ m *monitor.Monitor }

func newRefMonitor(tb testing.TB, k int, tau int64, s score.Scorer) *refMonitor {
	tb.Helper()
	m, err := monitor.New(k, tau, s, monitor.Options{TrackAhead: true})
	if err != nil {
		tb.Fatal(err)
	}
	return &refMonitor{m: m}
}

func toWireConfirms(confs []monitor.Confirmation) []LiveConfirmation {
	var out []LiveConfirmation
	for _, c := range confs {
		out = append(out, LiveConfirmation{
			ID: c.ID, Time: c.Time, Durable: c.Durable, Beaten: c.Beaten, Truncated: c.Truncated,
		})
	}
	return out
}

func (r *refMonitor) observe(tb testing.TB, t int64, attrs []float64) (LiveDecision, []LiveConfirmation) {
	tb.Helper()
	dec, confs, err := r.m.Observe(t, attrs)
	if err != nil {
		tb.Fatal(err)
	}
	return LiveDecision{ID: dec.ID, Time: dec.Time, Durable: dec.Durable, Rank: dec.Rank}, toWireConfirms(confs)
}

func (r *refMonitor) finish() []LiveConfirmation { return toWireConfirms(r.m.Finish()) }

// TestStandingQueryStress is the correctness bar for the subscription
// machinery: ≥64 concurrent subscriptions over a sealing live+sharded
// dataset with concurrent queriers and churn, then every pushed verdict is
// re-derived by running the equivalent durable query over the exact append
// prefix the event named — across all five strategies — and must agree.
func TestStandingQueryStress(t *testing.T) {
	rows, conns, subsPerConn := 240, 4, 17
	if testing.Short() {
		rows = 120
	}
	srv := NewServer(func(string, ...interface{}) {})
	srv.SetScheduler(serve.NewScheduler(4))
	srv.SetCache(serve.NewCache(256))
	if _, err := srv.AddLiveSharded("stream", 2, nil, core.Options{},
		core.LiveOptions{}, core.LiveShardOptions{SealRows: 48}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// Subscription spec pool: shared weights exercise canonical-key scoring
	// groups; anchors cover decision-only, confirm-only and both.
	weightPool := [][]float64{{1, 0.5}, {0.2, 2}, {3, 1}}
	anchorPool := []string{"", "look-back", "look-ahead"}
	type specID struct {
		k       int
		tau     int64
		wIdx    int
		anchor  string
	}
	specs := make([]specID, 0, conns*subsPerConn)
	for i := 0; i < conns*subsPerConn; i++ {
		specs = append(specs, specID{
			k:      1 + i%3,
			tau:    int64(4 + (i/3)%4*5),
			wIdx:   i % len(weightPool),
			anchor: anchorPool[i%len(anchorPool)],
		})
	}

	type subHandle struct {
		spec specID
		s    *Subscription
		cl   *Client
	}
	var handles []subHandle
	clients := make([]*Client, conns)
	for ci := 0; ci < conns; ci++ {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if _, _, err := cl.Hello(FeatureEvents); err != nil {
			t.Fatal(err)
		}
		clients[ci] = cl
		for si := 0; si < subsPerConn; si++ {
			spec := specs[ci*subsPerConn+si]
			s, err := cl.Subscribe(Request{Dataset: "stream", QuerySpec: QuerySpec{
				K: spec.k, Tau: spec.tau, Anchor: spec.anchor, Weights: weightPool[spec.wIdx],
			}})
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, subHandle{spec: spec, s: s, cl: cl})
		}
	}
	if len(handles) < 64 {
		t.Fatalf("only %d subscriptions; the bar is 64", len(handles))
	}

	// Mirror of the exact committed stream, by prefix.
	var (
		mirrorTimes []int64
		mirrorAttrs [][]float64
		lastTime    atomic.Int64
	)
	rng := rand.New(rand.NewSource(99))
	appender := dialT(t, addr)

	// Concurrent read load while appends and events flow.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Errorf("querier dial: %v", err)
				return
			}
			defer cl.Close()
			qrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if lastTime.Load() == 0 {
					continue
				}
				req := Request{Dataset: "stream", QuerySpec: QuerySpec{
					K: 1 + qrng.Intn(3), Tau: int64(5 + qrng.Intn(15)),
					Weights: weightPool[qrng.Intn(len(weightPool))],
				}}
				if _, _, err := cl.Query(req); err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
			}
		}(int64(500 + g))
	}

	// Churn: one connection subscribes and unsubscribes mid-stream, so
	// registry attach/detach races the append path.
	churn := dialT(t, addr)
	if _, _, err := churn.Hello(FeatureEvents); err != nil {
		t.Fatal(err)
	}
	var churnEvents atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s, err := churn.Subscribe(Request{Dataset: "stream",
				QuerySpec: QuerySpec{K: 2, Tau: 8, Weights: []float64{1, 1}}})
			if err != nil {
				t.Errorf("churn subscribe: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
			if err := churn.Unsubscribe(s); err != nil {
				t.Errorf("churn unsubscribe: %v", err)
				return
			}
			for range s.Events() {
				churnEvents.Add(1)
			}
		}
	}()

	const batch = 40
	for appended := 0; appended < rows; {
		n := batch
		if appended+n > rows {
			n = rows - appended
		}
		ingest := make([]IngestRow, n)
		for i := range ingest {
			tm := lastTime.Load() + int64(1+rng.Intn(3))
			at := []float64{rng.Float64() * 50, rng.Float64() * 10}
			ingest[i] = IngestRow{Time: tm, Attrs: at}
			mirrorTimes = append(mirrorTimes, tm)
			mirrorAttrs = append(mirrorAttrs, at)
			lastTime.Store(tm)
		}
		resp, err := appender.Append("stream", ingest)
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if resp.Appended != n {
			t.Fatalf("append committed %d/%d", resp.Appended, n)
		}
		appended += n
	}
	close(stop)
	wg.Wait()

	// Tear the standing queries down and collect every event.
	type subRecord struct {
		spec   specID
		events []Event
	}
	var records []subRecord
	for _, h := range handles {
		if err := h.cl.Unsubscribe(h.s); err != nil {
			t.Fatal(err)
		}
		var evs []Event
		for ev := range h.s.Events() {
			evs = append(evs, ev)
		}
		if d := h.s.Dropped(); d != 0 {
			t.Fatalf("subscription dropped %d events client-side", d)
		}
		records = append(records, subRecord{spec: h.spec, events: evs})
	}

	// Re-derive every pushed verdict from batch engines over the exact
	// prefixes the events named, across all five strategies. Identical
	// (spec, prefix, record) checks dedupe — subscriptions share specs.
	engines := make(map[int]*core.Engine)
	engineAt := func(prefix int) *core.Engine {
		if e, ok := engines[prefix]; ok {
			return e
		}
		ds, err := data.New(mirrorTimes[:prefix:prefix], mirrorAttrs[:prefix:prefix])
		if err != nil {
			t.Fatal(err)
		}
		e := core.NewEngine(ds, core.Options{})
		engines[prefix] = e
		return e
	}
	strategies := []core.Algorithm{core.TBase, core.THop, core.SBase, core.SBand, core.SHop}
	type checkKey struct {
		spec    specID
		prefix  int
		id      int
		ahead   bool
		durable bool
	}
	checked := make(map[checkKey]bool)
	verify := func(spec specID, prefix, id int, tm int64, durable, ahead bool) {
		t.Helper()
		key := checkKey{spec: spec, prefix: prefix, id: id, ahead: ahead, durable: durable}
		if checked[key] {
			return
		}
		checked[key] = true
		if id >= prefix {
			t.Fatalf("verdict names record %d beyond its prefix %d", id, prefix)
		}
		if mirrorTimes[id] != tm {
			t.Fatalf("record %d: event time %d, stream committed %d", id, tm, mirrorTimes[id])
		}
		anchor := core.LookBack
		if ahead {
			anchor = core.LookAhead
		}
		eng := engineAt(prefix)
		for _, alg := range strategies {
			res, err := eng.DurableTopK(core.Query{
				K: spec.k, Tau: spec.tau, Start: tm, End: tm,
				Scorer: score.MustLinear(weightPool[spec.wIdx]...), Anchor: anchor, Algorithm: alg,
			})
			if err != nil {
				t.Fatalf("reference query (%v): %v", alg, err)
			}
			found := false
			for _, r := range res.Records {
				if r.ID == id {
					found = true
				}
			}
			if found != durable {
				t.Fatalf("spec %+v prefix %d record %d (ahead=%v): pushed durable=%v, %v re-derives %v",
					spec, prefix, id, ahead, durable, alg, found)
			}
		}
	}

	totalDecisions, totalConfirms := 0, 0
	for _, rec := range records {
		lastPrefix := 0
		for _, ev := range rec.events {
			if ev.Prefix < lastPrefix {
				t.Fatalf("prefix went backwards: %d after %d", ev.Prefix, lastPrefix)
			}
			lastPrefix = ev.Prefix
			if d := ev.Decision; d != nil {
				totalDecisions++
				if ev.Prefix < 1 || ev.Prefix > len(mirrorTimes) {
					t.Fatalf("decision at impossible prefix %d", ev.Prefix)
				}
				// The decision describes exactly the append that produced
				// this prefix — the bit-exactness of Event.Prefix.
				if d.ID != ev.Prefix-1 || d.Time != mirrorTimes[ev.Prefix-1] {
					t.Fatalf("decision %+v does not describe prefix %d's append (time %d)",
						d, ev.Prefix, mirrorTimes[ev.Prefix-1])
				}
				verify(rec.spec, ev.Prefix, d.ID, d.Time, d.Durable, false)
			}
			for _, c := range ev.Confirms {
				totalConfirms++
				if c.Truncated {
					// Window cut short by teardown: the full-prefix query is
					// not equivalent. Internal consistency still holds.
					if c.Durable != (c.Beaten < rec.spec.k) {
						t.Fatalf("truncated confirmation inconsistent: %+v (k=%d)", c, rec.spec.k)
					}
					continue
				}
				verify(rec.spec, ev.Prefix, c.ID, c.Time, c.Durable, true)
			}
		}
	}
	if totalDecisions == 0 || totalConfirms == 0 {
		t.Fatalf("stress run pushed %d decisions / %d confirmations; expected both streams to flow",
			totalDecisions, totalConfirms)
	}
	if churnEvents.Load() == 0 {
		t.Error("churn subscriptions never received an event")
	}
	t.Logf("verified %d unique verdicts (%d decisions, %d confirmations) across %d subscriptions and %d strategies",
		len(checked), totalDecisions, totalConfirms, len(records), len(strategies))
}

// TestSubscriptionsGate: SetSubscriptions(false) withholds the events
// feature at hello — protocol v2 still negotiates, but subscribe requests
// fail — and re-enabling restores serving for later hellos (the durserved
// -subscriptions opt-in).
func TestSubscriptionsGate(t *testing.T) {
	srv, addr := startV2Server(t, 0)
	srv.SetSubscriptions(false)

	sub := Request{Dataset: "stream", QuerySpec: QuerySpec{K: 1, Tau: 5, Weights: []float64{1, 1}}}
	cl := dialT(t, addr)
	v, feats, err := cl.Hello(FeatureEvents)
	if err != nil {
		t.Fatal(err)
	}
	if v != Version2 {
		t.Fatalf("negotiated %d, want %d (the gate denies the feature, not the protocol)", v, Version2)
	}
	if len(feats) != 0 {
		t.Fatalf("accepted features %v, want none while subscriptions are off", feats)
	}
	if _, err := cl.Subscribe(sub); err == nil {
		t.Fatal("subscribe accepted while subscriptions are disabled")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("rejected subscribe killed the session: %v", err)
	}

	srv.SetSubscriptions(true)
	cl2 := dialT(t, addr)
	if _, feats, err := cl2.Hello(FeatureEvents); err != nil || len(feats) != 1 {
		t.Fatalf("hello after re-enable: features %v, err %v", feats, err)
	}
	s, err := cl2.Subscribe(sub)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Unsubscribe(s); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerReconnects kills the server under a follower and restarts it
// on the same address: the follower re-dials, re-subscribes, and resumes
// the stream, with the seam visible as the prefix restarting on the fresh
// dataset.
func TestFollowerReconnects(t *testing.T) {
	startAt := func(listen string) (*Server, string) {
		t.Helper()
		srv := NewServer(func(string, ...interface{}) {})
		if _, err := srv.AddLive("stream", 2, nil, core.Options{}, core.LiveOptions{}); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		return srv, ln.Addr().String()
	}
	srvA, addr := startAt("127.0.0.1:0")

	f, err := Follow(addr, Request{Dataset: "stream", QuerySpec: QuerySpec{
		K: 1, Tau: 1 << 40, Anchor: "look-back", Weights: []float64{1, 1},
	}}, RetryPolicy{MaxAttempts: 100, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	recv := func(n int) []Event {
		t.Helper()
		evs := make([]Event, 0, n)
		for len(evs) < n {
			select {
			case ev, ok := <-f.Events():
				if !ok {
					t.Fatalf("event stream closed after %d/%d events: %v", len(evs), n, f.Err())
				}
				evs = append(evs, ev)
			case <-time.After(10 * time.Second):
				t.Fatalf("timed out after %d/%d events", len(evs), n)
			}
		}
		return evs
	}

	for i := 1; i <= 3; i++ {
		if _, _, err := srvA.AppendRow("stream", int64(i), []float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	evs := recv(3)
	if evs[2].Prefix != 3 || evs[2].Decision == nil {
		t.Fatalf("pre-restart event %+v, want decision at prefix 3", evs[2])
	}

	srvA.Close()
	srvB, _ := startAt(addr)
	defer srvB.Close()
	// Reconnects increments only after the new subscription is registered,
	// so once it reads 1 the appends below are guaranteed to be observed.
	deadline := time.Now().Add(10 * time.Second)
	for f.Reconnects() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never reconnected: %v", f.Err())
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 1; i <= 2; i++ {
		if _, _, err := srvB.AppendRow("stream", int64(100+i), []float64{1, 0}); err != nil {
			t.Fatal(err)
		}
	}
	evs = recv(2)
	// The fresh server's dataset starts empty and its in-memory registry
	// does not know the follower's durable key, so the resume is rejected
	// and the follower falls back to a fresh subscription: the prefix
	// restarts at 1 — exactly the seam Follower documents — and the fallback
	// is counted in Resets.
	if evs[0].Prefix != 1 || evs[1].Prefix != 2 {
		t.Fatalf("post-restart prefixes %d,%d, want 1,2", evs[0].Prefix, evs[1].Prefix)
	}
	if got := f.Reconnects(); got != 1 {
		t.Fatalf("%d reconnects, want 1", got)
	}
	if got := f.Resets(); got != 1 {
		t.Fatalf("%d resets, want 1 (restart discarded the in-memory registry)", got)
	}
}
