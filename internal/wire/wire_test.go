package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/score"
)

func testDataset(tb testing.TB, n int, seed int64) *data.Dataset {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	times := make([]int64, n)
	attrs := make([][]float64, n)
	for i := 0; i < n; i++ {
		times[i] = int64(i + 1)
		attrs[i] = []float64{rng.Float64() * 50, rng.Float64() * 10}
	}
	ds, err := data.New(times, attrs)
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

// startServer returns a ready server on a loopback listener plus a dialed
// client; both are torn down with the test.
func startServer(tb testing.TB) (*Server, *Client) {
	tb.Helper()
	srv := NewServer(func(string, ...interface{}) {}) // quiet logs in tests
	ds := testDataset(tb, 500, 1)
	if err := srv.Add("games", ds, []string{"points", "assists"}, core.Options{}); err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go srv.Serve(ln)
	tb.Cleanup(func() { srv.Close() })

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{V: Version, Op: OpQuery, Dataset: "d", QuerySpec: QuerySpec{K: 3, Weights: []float64{1, 2}}}
	if err := WriteFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var out Request
	err := ReadFrame(bytes.NewReader(hdr[:]), &out)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Request{V: Version, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	var out Request
	if err := ReadFrame(bytes.NewReader(trunc), &out); err == nil {
		t.Fatal("truncated frame decoded without error")
	}
}

func TestFrameGarbageJSON(t *testing.T) {
	payload := []byte("{nope")
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	var out Request
	if err := ReadFrame(&buf, &out); err == nil {
		t.Fatal("garbage JSON decoded without error")
	}
}

func TestPingAndDatasets(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	infos, err := cl.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "games" {
		t.Fatalf("datasets = %+v, want one entry named games", infos)
	}
	d := infos[0]
	if d.Len != 500 || d.Dims != 2 || d.Start != 1 || d.End != 500 {
		t.Errorf("dataset info %+v has wrong shape", d)
	}
	if len(d.Attrs) != 2 || d.Attrs[0] != "points" {
		t.Errorf("attribute names %v not served", d.Attrs)
	}
}

func TestQueryWithWeightsMatchesLocal(t *testing.T) {
	srv, cl := startServer(t)
	recs, st, err := cl.Query(Request{
		Dataset:   "games",
		QuerySpec: QuerySpec{K: 2, Tau: 60, Weights: []float64{1, 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Algorithm == "" {
		t.Fatal("missing stats")
	}
	// Compare against a direct engine evaluation.
	sv, err := srv.lookup("games")
	if err != nil {
		t.Fatal(err)
	}
	ds := sv.eng.Dataset()
	want := core.BruteForce(ds, score.MustLinear(1, 0.5), 2, 60, 1, 500, core.LookBack)
	if len(recs) != len(want) {
		t.Fatalf("got %d records, oracle %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.ID != want[i] {
			t.Fatalf("record %d: id %d, oracle %d", i, r.ID, want[i])
		}
	}
}

func TestQueryWithExpression(t *testing.T) {
	_, cl := startServer(t)
	recs, _, err := cl.Query(Request{
		Dataset: "games",
		QuerySpec: QuerySpec{
			K: 1, Tau: 100,
			Expr: "points + 4*log1p(assists)",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("expression query returned nothing")
	}
	// Positional syntax works too and yields the same answer.
	recs2, _, err := cl.Query(Request{
		Dataset: "games",
		QuerySpec: QuerySpec{
			K: 1, Tau: 100,
			Expr: "x0 + 4*log1p(x1)",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, recs2) {
		t.Fatal("named and positional expressions disagree")
	}
}

func TestQueryDurationsAndAnchors(t *testing.T) {
	_, cl := startServer(t)
	recs, _, err := cl.Query(Request{
		Dataset: "games",
		QuerySpec: QuerySpec{
			K: 1, Tau: 50, Weights: []float64{1, 0},
			WithDurations: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.MaxDuration < 50 && !r.FullHistory {
			t.Fatalf("durable record %d reports max duration %d < tau", r.ID, r.MaxDuration)
		}
	}
	// Mid-anchored query over the wire.
	mid, _, err := cl.Query(Request{
		Dataset: "games",
		QuerySpec: QuerySpec{
			K: 1, Tau: 50, Lead: 25, Anchor: "general",
			Weights: []float64{1, 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) == 0 {
		t.Fatal("mid-anchored query returned nothing")
	}
	if _, _, err := cl.Query(Request{
		Dataset:   "games",
		QuerySpec: QuerySpec{K: 1, Tau: 50, Anchor: "sideways", Weights: []float64{1, 0}},
	}); err == nil || !strings.Contains(err.Error(), "anchor") {
		t.Fatalf("bad anchor: got %v", err)
	}
}

func TestExplainOverWire(t *testing.T) {
	_, cl := startServer(t)
	plan, err := cl.Explain(Request{
		Dataset:   "games",
		QuerySpec: QuerySpec{K: 5, Tau: 100, Weights: []float64{1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range []string{"plan:", "t-hop", "E|S|"} {
		if !strings.Contains(plan, tok) {
			t.Errorf("explain output missing %q:\n%s", tok, plan)
		}
	}
}

func TestRequestErrors(t *testing.T) {
	_, cl := startServer(t)
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"unknown dataset", Request{Op: OpQuery, Dataset: "nope", QuerySpec: QuerySpec{K: 1, Tau: 1, Weights: []float64{1, 1}}}, "unknown dataset"},
		{"no scorer", Request{Op: OpQuery, Dataset: "games", QuerySpec: QuerySpec{K: 1, Tau: 1}}, "weights or expr"},
		{"both scorers", Request{Op: OpQuery, Dataset: "games", QuerySpec: QuerySpec{K: 1, Tau: 1, Weights: []float64{1, 1}, Expr: "x0"}}, "mutually exclusive"},
		{"bad expression", Request{Op: OpQuery, Dataset: "games", QuerySpec: QuerySpec{K: 1, Tau: 1, Expr: "(("}}, "expr"},
		{"bad algorithm", Request{Op: OpQuery, Dataset: "games", QuerySpec: QuerySpec{K: 1, Tau: 1, Weights: []float64{1, 1}, Algorithm: "warp"}}, "unknown algorithm"},
		{"bad k", Request{Op: OpQuery, Dataset: "games", QuerySpec: QuerySpec{K: 0, Tau: 1, Weights: []float64{1, 1}}}, "k must be"},
		{"wrong dims", Request{Op: OpQuery, Dataset: "games", QuerySpec: QuerySpec{K: 1, Tau: 1, Weights: []float64{1}}}, "dimensionality"},
		{"unknown op", Request{Op: "dance"}, "unknown op"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := cl.Do(Request{V: Version}.merge(c.req))
			if err != nil {
				t.Fatal(err)
			}
			if resp.OK {
				t.Fatal("request unexpectedly succeeded")
			}
			if !strings.Contains(resp.Error, c.want) {
				t.Fatalf("error %q does not contain %q", resp.Error, c.want)
			}
		})
	}
}

// merge overlays non-zero fields for table-driven error tests.
func (r Request) merge(o Request) Request {
	o.V = r.V
	return o
}

func TestVersionMismatch(t *testing.T) {
	_, cl := startServer(t)
	resp, err := cl.Do(Request{Op: OpPing}) // Do stamps the version; craft manually below
	if err != nil || !resp.OK {
		t.Fatalf("ping failed: %v %+v", err, resp)
	}
	// Raw frame with a wrong version.
	conn, err := net.Dial("tcp", cl.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, &Request{V: 99, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	var raw Response
	if err := ReadFrame(conn, &raw); err != nil {
		t.Fatal(err)
	}
	if raw.OK || !strings.Contains(raw.Error, "version") {
		t.Fatalf("version mismatch not rejected: %+v", raw)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t)
	// Find the listener address through a fresh client's view.
	var addr string
	srv.lnMu.Lock()
	for ln := range srv.lns {
		addr = ln.Addr().String()
	}
	srv.lnMu.Unlock()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for rep := 0; rep < 10; rep++ {
				recs, _, err := cl.Query(Request{
					Dataset: "games",
					QuerySpec: QuerySpec{
						K: 1 + i%3, Tau: int64(20 + 10*i),
						Weights: []float64{1, float64(i)},
					},
				})
				if err != nil {
					errs <- err
					return
				}
				if len(recs) == 0 {
					errs <- errors.New("empty answer")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServeConnOverPipe(t *testing.T) {
	srv := NewServer(func(string, ...interface{}) {})
	if err := srv.Add("d", testDataset(t, 100, 2), nil, core.Options{}); err != nil {
		t.Fatal(err)
	}
	cEnd, sEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		srv.ServeConn(sEnd)
		close(done)
	}()
	cl := NewClient(cEnd)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := cl.Query(Request{Dataset: "d", QuerySpec: QuerySpec{K: 1, Tau: 10, Weights: []float64{1, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records over pipe")
	}
	cl.Close()
	<-done
}

func TestAddValidation(t *testing.T) {
	srv := NewServer(func(string, ...interface{}) {})
	ds := testDataset(t, 10, 3)
	if err := srv.Add("", ds, nil, core.Options{}); err == nil {
		t.Error("empty name accepted")
	}
	if err := srv.Add("d", ds, []string{"one"}, core.Options{}); err == nil {
		t.Error("wrong attribute-name count accepted")
	}
	if err := srv.Add("d", ds, []string{"min", "x"}, core.Options{}); err == nil {
		t.Error("builtin-colliding attribute name accepted")
	}
	if err := srv.Add("d", ds, nil, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Add("d", ds, nil, core.Options{}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestWriteFrameRejectsUnmarshalable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, func() {}); err == nil {
		t.Fatal("function value marshaled")
	}
}

var _ io.Closer = (*Client)(nil)

func TestMostDurableOverWire(t *testing.T) {
	srv, cl := startServer(t)
	recs, err := cl.MostDurable(Request{
		Dataset:   "games",
		QuerySpec: QuerySpec{K: 1, N: 5, Weights: []float64{1, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].MaxDuration > recs[i-1].MaxDuration {
			t.Fatalf("durations not descending: %v", recs)
		}
	}
	// Cross-check the champion against the engine directly.
	sv, err := srv.lookup("games")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sv.eng.MostDurable(1, score.MustLinear(1, 0), core.LookBack, 5)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].ID != want[0].ID || recs[0].MaxDuration != want[0].Duration {
		t.Fatalf("champion %+v, engine says %+v", recs[0], want[0])
	}

	// Expression scorers and the look-ahead anchor both work.
	ahead, err := cl.MostDurable(Request{
		Dataset: "games",
		QuerySpec: QuerySpec{
			K: 1, N: 3, Anchor: "look-ahead",
			Expr: "points + log1p(assists)",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ahead) != 3 {
		t.Fatalf("look-ahead most-durable returned %d records", len(ahead))
	}

	// Error taxonomy.
	if _, err := cl.MostDurable(Request{Dataset: "games", QuerySpec: QuerySpec{K: 1, N: 0, Weights: []float64{1, 0}}}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := cl.MostDurable(Request{Dataset: "games", QuerySpec: QuerySpec{K: 1, N: 2, Anchor: "general", Weights: []float64{1, 0}}}); err == nil {
		t.Error("general anchor accepted for most-durable")
	}
}

// TestShardedDatasetOverWire registers the same dataset twice — one plain
// engine, one time-sharded — and checks that every wire operation returns
// identical answers through both.
func TestShardedDatasetOverWire(t *testing.T) {
	srv := NewServer(func(string, ...interface{}) {})
	ds := testDataset(t, 600, 7)
	// Register the plain engine pre-built through AddQuerier, exercising
	// the same path durserved's sharded registration takes.
	if err := srv.AddQuerier("plain", core.NewEngine(ds, core.Options{}), nil); err != nil {
		t.Fatal(err)
	}
	err := srv.AddSharded("sharded", ds, nil, core.Options{},
		core.ShardOptions{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddSharded("sharded", ds, nil, core.Options{}, core.ShardOptions{Shards: 2}); err == nil {
		t.Fatal("duplicate sharded registration accepted")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	base := Request{QuerySpec: QuerySpec{K: 3, Tau: 80, Weights: []float64{1, 0.5}, WithDurations: true}}
	reqPlain, reqSharded := base, base
	reqPlain.Dataset, reqSharded.Dataset = "plain", "sharded"
	wantRecs, _, err := cl.Query(reqPlain)
	if err != nil {
		t.Fatal(err)
	}
	gotRecs, _, err := cl.Query(reqSharded)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantRecs) == 0 || !reflect.DeepEqual(gotRecs, wantRecs) {
		t.Fatalf("sharded wire answer differs:\n got %+v\nwant %+v", gotRecs, wantRecs)
	}

	for _, name := range []string{"plain", "sharded"} {
		req := base
		req.Dataset = name
		req.N = 3
		top, err := cl.MostDurable(req)
		if err != nil || len(top) != 3 {
			t.Fatalf("%s most-durable: %v (%d records)", name, err, len(top))
		}
		plan, err := cl.Explain(req)
		if err != nil || plan == "" {
			t.Fatalf("%s explain: %v %q", name, err, plan)
		}
	}
}
