package wire

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/score"
)

// fastRetry keeps retry tests quick while still exercising backoff.
func fastRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 1 << 8,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		MaxElapsed:  10 * time.Second,
	}
}

// TestConnTimeoutDisconnectsIdleClient covers the read deadline: a client
// that goes silent is cut after the configured timeout instead of pinning a
// handler goroutine forever.
func TestConnTimeoutDisconnectsIdleClient(t *testing.T) {
	srv := NewServer(func(string, ...interface{}) {})
	ds := testDataset(t, 50, 7)
	if err := srv.Add("games", ds, nil, core.Options{}); err != nil {
		t.Fatal(err)
	}
	srv.SetConnTimeout(50 * time.Millisecond)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping before idling: %v", err)
	}
	time.Sleep(200 * time.Millisecond) // > connTimeout: the server hangs up
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := cl.Ping(); err != nil {
			break // disconnected, as configured
		}
		if !time.Now().Before(deadline) {
			t.Fatal("idle connection still alive long past the conn timeout")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulCloseWithIdleConnections is the shutdown regression test:
// Close must return promptly even while clients sit idle in a read (before
// draining was added, Close blocked on wg.Wait forever).
func TestGracefulCloseWithIdleConnections(t *testing.T) {
	srv := NewServer(func(string, ...interface{}) {})
	ds := testDataset(t, 50, 8)
	if err := srv.Add("games", ds, nil, core.Options{}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	// Park several idle connections plus one that keeps issuing queries.
	for i := 0; i < 3; i++ {
		cl, err := Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		if err := cl.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	busy, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		for {
			if _, _, err := busy.Query(Request{Dataset: "games", QuerySpec: QuerySpec{K: 2, Tau: 50, Weights: []float64{1, 1}}}); err != nil {
				return // server shut down mid-stream: expected
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain idle connections")
	}
	<-stop
}

// TestAppendRetryWaitsOutIngestLock reuses the production retry loop against
// the server-side ingest lockout: the rejection is marked transient, the
// client backs off until the feed drains, and the retry count is surfaced.
func TestAppendRetryWaitsOutIngestLock(t *testing.T) {
	srv, _, cl := startLiveServer(t)
	if err := srv.SetIngesting("stream", true); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		srv.SetIngesting("stream", false)
	}()
	resp, err := cl.AppendRetry("stream", []IngestRow{
		{Time: 1, Attrs: []float64{1, 2}},
		{Time: 2, Attrs: []float64{3, 4}},
	}, fastRetry())
	if err != nil {
		t.Fatalf("AppendRetry through draining lock: %v", err)
	}
	if resp.Appended != 2 || len(resp.Decisions) != 2 {
		t.Fatalf("aggregated response %+v, want 2 rows with decisions", resp)
	}
	if cl.Retries() == 0 {
		t.Fatal("lockout rejections did not count as retries")
	}
}

// TestAppendRetryDoesNotRetryValidation: non-transient failures (a bad row)
// return immediately with the committed prefix, no backoff.
func TestAppendRetryDoesNotRetryValidation(t *testing.T) {
	_, _, cl := startLiveServer(t)
	resp, err := cl.AppendRetry("stream", []IngestRow{
		{Time: 10, Attrs: []float64{1, 2}},
		{Time: 5, Attrs: []float64{3, 4}}, // time goes backwards: rejected
	}, fastRetry())
	if err == nil {
		t.Fatal("out-of-order row accepted")
	}
	if IsTransient(err) {
		t.Fatalf("validation failure classified transient: %v", err)
	}
	if resp.Appended != 1 {
		t.Fatalf("committed prefix %d, want 1", resp.Appended)
	}
	if cl.Retries() != 0 {
		t.Fatalf("non-transient failure burned %d retries", cl.Retries())
	}
}

// TestAppendRetryResumesAfterPartialCommit scripts a server over net.Pipe
// that commits a prefix and then fails transiently: the retry must re-send
// only the uncommitted suffix, so no row is ever applied twice.
func TestAppendRetryResumesAfterPartialCommit(t *testing.T) {
	cconn, sconn := net.Pipe()
	defer cconn.Close()
	defer sconn.Close()
	cl := NewClient(cconn)

	var resent []IngestRow
	go func() {
		// First attempt: two rows committed, then a transient rejection.
		var req Request
		if err := ReadFrame(sconn, &req); err != nil {
			return
		}
		WriteFrame(sconn, &Response{V: Version, Appended: 2, Transient: true,
			Error: "locked mid-batch"})
		// Second attempt must carry only the remaining rows.
		if err := ReadFrame(sconn, &req); err != nil {
			return
		}
		resent = req.Rows
		WriteFrame(sconn, &Response{V: Version, OK: true, Appended: len(req.Rows)})
	}()

	rows := []IngestRow{
		{Time: 1, Attrs: []float64{1}},
		{Time: 2, Attrs: []float64{2}},
		{Time: 3, Attrs: []float64{3}},
		{Time: 4, Attrs: []float64{4}},
	}
	resp, err := cl.AppendRetry("stream", rows, fastRetry())
	if err != nil {
		t.Fatalf("AppendRetry: %v", err)
	}
	if resp.Appended != 4 {
		t.Fatalf("aggregated Appended = %d, want 4", resp.Appended)
	}
	if len(resent) != 2 || resent[0].Time != 3 || resent[1].Time != 4 {
		t.Fatalf("retry re-sent %+v, want exactly the uncommitted suffix [3 4]", resent)
	}
}

// TestAppendRetryStopsOnTransportFailure: a connection that dies before the
// response frame leaves the commit state of the in-flight rows unknown, so
// AppendRetry must not blindly re-send over a dead connection — it returns
// ErrIndeterminate immediately, burning no retries, instead of risking a
// double-applied batch.
func TestAppendRetryStopsOnTransportFailure(t *testing.T) {
	cconn, sconn := net.Pipe()
	defer cconn.Close()
	cl := NewClient(cconn)
	go func() {
		var req Request
		if err := ReadFrame(sconn, &req); err != nil {
			return
		}
		sconn.Close() // hang up after reading: the rows may have been applied
	}()
	resp, err := cl.AppendRetry("stream", []IngestRow{
		{Time: 1, Attrs: []float64{1}},
		{Time: 2, Attrs: []float64{2}},
	}, fastRetry())
	if !errors.Is(err, ErrIndeterminate) {
		t.Fatalf("transport failure returned %v, want ErrIndeterminate", err)
	}
	if resp.Appended != 0 {
		t.Fatalf("no response frame ever arrived, yet Appended = %d", resp.Appended)
	}
	if cl.Retries() != 0 {
		t.Fatalf("dead connection burned %d retries", cl.Retries())
	}
}

// TestDialRetryWaitsForServer: connection-refused is transient, so DialRetry
// rides out a server that has not finished starting (e.g. WAL replay).
func TestDialRetryWaitsForServer(t *testing.T) {
	// Reserve a port, then free it so the first dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := NewServer(func(string, ...interface{}) {})
	go func() {
		time.Sleep(30 * time.Millisecond)
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial below will fail and report
		}
		srv.Serve(ln)
	}()
	defer srv.Close()

	cl, err := DialRetry(addr, fastRetry())
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatalf("ping after retried dial: %v", err)
	}

	// A structurally hopeless address is not transient: one attempt, no wait.
	start := time.Now()
	if _, err := DialRetry("no-port-here", fastRetry()); err == nil {
		t.Fatal("dial of malformed address succeeded")
	} else if IsTransient(err) {
		t.Fatalf("malformed address classified transient: %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("non-transient dial failure kept retrying")
	}
}

// TestAddLiveQuerier covers registration through the split query/ingest
// surface (the hook a durability store uses to interpose on appends).
func TestAddLiveQuerier(t *testing.T) {
	srv := NewServer(func(string, ...interface{}) {})
	le, err := core.NewLiveEngine(1, core.Options{}, core.LiveOptions{
		MonitorK: 1, MonitorTau: 5, MonitorScorer: score.MustLinear(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddLiveQuerier("split", le, nil, nil); err == nil {
		t.Fatal("nil ingest surface accepted")
	}
	if err := srv.AddLiveQuerier("split", le, le, nil); err != nil {
		t.Fatal(err)
	}
	cconn, sconn := net.Pipe()
	go srv.ServeConn(sconn)
	cl := NewClient(cconn)
	defer cl.Close()
	resp, err := cl.Append("split", []IngestRow{{Time: 1, Attrs: []float64{7}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Appended != 1 || len(resp.Decisions) != 1 {
		t.Fatalf("append through split registration: %+v", resp)
	}
	infos, err := cl.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || !infos[0].Live || infos[0].Len != 1 {
		t.Fatalf("split dataset info %+v", infos)
	}
}

// TestServerErrorRendering pins the historical error text so older callers
// matching on the string keep working.
func TestServerErrorRendering(t *testing.T) {
	_, cl := startServer(t)
	_, _, err := cl.Query(Request{Dataset: "nope", QuerySpec: QuerySpec{K: 1, Tau: 1, Weights: []float64{1, 1}}})
	if err == nil || !strings.Contains(err.Error(), "wire: server: ") {
		t.Fatalf("server error lost its rendering: %v", err)
	}
}
