package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// The golden frames below are byte captures of v1 requests as the
// pre-QuerySpec god-struct marshaled them. The QuerySpec extraction must not
// move, rename or reorder any JSON key: v1 servers and clients in the field
// parse these exact bytes, and the embedded-struct refactor is only
// backward compatible if marshaling reproduces them bit-for-bit.
var goldenV1Frames = []struct {
	name string
	req  Request
	json string
}{
	{
		name: "query with weights and explicit interval",
		req: Request{V: Version, Op: OpQuery, Dataset: "games", QuerySpec: QuerySpec{
			K: 3, Tau: 60, Start: 5, End: 90, ExplicitInterval: true,
			Weights: []float64{1, 0.5},
		}},
		json: `{"v":1,"op":"query","dataset":"games","k":3,"tau":60,"start":5,"end":90,"explicitInterval":true,"weights":[1,0.5]}`,
	},
	{
		name: "most-durable with expression and anchor",
		req: Request{V: Version, Op: OpMostDurable, Dataset: "games", QuerySpec: QuerySpec{
			K: 1, N: 5, Anchor: "look-ahead", Expr: "points + log1p(assists)",
		}},
		json: `{"v":1,"op":"most-durable","dataset":"games","k":1,"n":5,"anchor":"look-ahead","expr":"points + log1p(assists)"}`,
	},
	{
		name: "explain with every scalar knob",
		req: Request{V: Version, Op: OpExplain, Dataset: "d", QuerySpec: QuerySpec{
			K: 2, Tau: 10, Lead: 4, Anchor: "general", Algorithm: "s-hop",
			Weights: []float64{1}, WithDurations: true,
		}},
		json: `{"v":1,"op":"explain","dataset":"d","k":2,"tau":10,"lead":4,"anchor":"general","algorithm":"s-hop","weights":[1],"withDurations":true}`,
	},
	{
		name: "append batch",
		req: Request{V: Version, Op: OpAppend, Dataset: "stream",
			Rows: []IngestRow{{Time: 7, Attrs: []float64{1, 2}}, {Time: 9, Attrs: []float64{3, 4}}}},
		json: `{"v":1,"op":"append","dataset":"stream","rows":[{"time":7,"attrs":[1,2]},{"time":9,"attrs":[3,4]}]}`,
	},
	{
		name: "ping carries nothing extra",
		req:  Request{V: Version, Op: OpPing},
		json: `{"v":1,"op":"ping"}`,
	},
}

// TestGoldenV1RequestFrames: marshaling a post-refactor Request must emit the
// pre-refactor bytes, and parsing the pre-refactor bytes must rebuild the
// identical struct.
func TestGoldenV1RequestFrames(t *testing.T) {
	for _, g := range goldenV1Frames {
		t.Run(g.name, func(t *testing.T) {
			got, err := json.Marshal(g.req)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != g.json {
				t.Fatalf("marshal drifted from the v1 capture:\n got  %s\n want %s", got, g.json)
			}
			var back Request
			if err := json.Unmarshal([]byte(g.json), &back); err != nil {
				t.Fatal(err)
			}
			reGot, err := json.Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(reGot, got) {
				t.Fatalf("unmarshal/marshal round trip drifted:\n got  %s\n want %s", reGot, got)
			}
		})
	}
}

// TestGoldenV1WireFraming pins the full frame encoding (4-byte big-endian
// length prefix + JSON payload) for one representative request.
func TestGoldenV1WireFraming(t *testing.T) {
	g := goldenV1Frames[0]
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &g.req); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	if len(frame) < 4 {
		t.Fatalf("frame too short: %d bytes", len(frame))
	}
	if n := binary.BigEndian.Uint32(frame[:4]); int(n) != len(g.json) {
		t.Fatalf("length prefix %d, payload is %d bytes", n, len(g.json))
	}
	if string(frame[4:]) != g.json {
		t.Fatalf("payload drifted:\n got  %s\n want %s", frame[4:], g.json)
	}
}

// TestV2FieldsMarshalAway: the fields added for protocol v2 and v2.1 must be
// invisible on v1 frames — a v1 request marshals without features/subId (or
// the v2.1 backfill keys) and a v1 response without them either, so old
// peers never see unknown keys.
func TestV2FieldsMarshalAway(t *testing.T) {
	b, err := json.Marshal(Request{V: Version, Op: OpPing})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"features", "subId", "backfill", "fromPrefix", "subKey"} {
		if bytes.Contains(b, []byte(key)) {
			t.Fatalf("v1 request leaks v2 key %q: %s", key, b)
		}
	}
	rb, err := json.Marshal(Response{V: Version, OK: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"features", "subId", "event", "subKey", "base"} {
		if bytes.Contains(rb, []byte(key)) {
			t.Fatalf("v1 response leaks v2 key %q: %s", key, rb)
		}
	}
}

// TestV21FieldsMarshalAwayOnV20Frames: a v2.0 session's frames must not grow
// the v2.1 keys either — subscribe responses without the backfill feature
// carry no subKey/base, and event frames no seq — so v2.0 golden bytes in
// the field stay byte-identical.
func TestV21FieldsMarshalAwayOnV20Frames(t *testing.T) {
	rb, err := json.Marshal(Response{V: Version2, OK: true, SubID: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"subKey", "base", "backfill", "fromPrefix"} {
		if bytes.Contains(rb, []byte(key)) {
			t.Fatalf("v2.0 subscribe response leaks v2.1 key %q: %s", key, rb)
		}
	}
	eb, err := json.Marshal(Event{V: Version2, Event: EventSub, SubID: 3, Prefix: 17,
		Decision: &LiveDecision{ID: 16, Time: 99, Durable: true, Rank: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(eb, []byte("seq")) {
		t.Fatalf("v2.0 event frame leaks v2.1 key \"seq\": %s", eb)
	}
	want := `{"v":2,"event":"sub","subId":3,"prefix":17,"decision":{"id":16,"time":99,"durable":true,"rank":1}}`
	if string(eb) != want {
		t.Fatalf("v2.0 event frame drifted:\n got  %s\n want %s", eb, want)
	}
}
