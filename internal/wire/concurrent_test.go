package wire

import (
	"math/rand"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/serve"
)

// startConcurrentServer returns a server in pipelined mode (scheduler
// installed, result cache when cacheSize > 0) listening on loopback TCP.
func startConcurrentServer(tb testing.TB, workers, cacheSize int) (*Server, *serve.Cache, string) {
	tb.Helper()
	srv := NewServer(func(string, ...interface{}) {})
	srv.SetScheduler(serve.NewScheduler(workers))
	var cache *serve.Cache
	if cacheSize > 0 {
		cache = serve.NewCache(cacheSize)
		srv.SetCache(cache)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go srv.Serve(ln)
	tb.Cleanup(func() { srv.Close() })
	return srv, cache, ln.Addr().String()
}

// TestPipelinedOrdering writes a burst of frames without reading and checks
// the responses come back in request order: queries evaluate concurrently on
// the scheduler while pings are handled inline on the read loop, so any FIFO
// violation between the two paths shows up as a shape mismatch.
func TestPipelinedOrdering(t *testing.T) {
	srv, _, addr := startConcurrentServer(t, 4, 0)
	if err := srv.Add("games", testDataset(t, 300, 3), nil, core.Options{}); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const pairs = 16
	for i := 0; i < pairs; i++ {
		q := Request{V: Version, Op: OpQuery, Dataset: "games",
			QuerySpec: QuerySpec{K: 1 + i%4, Tau: 10, Weights: []float64{1, 0.5}}}
		if err := WriteFrame(conn, &q); err != nil {
			t.Fatal(err)
		}
		p := Request{V: Version, Op: OpPing}
		if err := WriteFrame(conn, &p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2*pairs; i++ {
		var resp Response
		if err := ReadFrame(conn, &resp); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if !resp.OK {
			t.Fatalf("response %d: %s", i, resp.Error)
		}
		if wantQuery := i%2 == 0; (resp.Stats != nil) != wantQuery {
			t.Fatalf("response %d out of order: stats=%v, want query=%v",
				i, resp.Stats != nil, wantQuery)
		}
	}
}

// TestExplicitIntervalZero is the regression test for the [0,0] interval
// rewrite: without the flag a start==end==0 request keeps meaning "whole
// span" (backward compatibility), with it the server queries the point
// interval [0,0], which is addressable on datasets starting at time 0.
func TestExplicitIntervalZero(t *testing.T) {
	times := make([]int64, 50)
	attrs := make([][]float64, 50)
	for i := range times {
		times[i] = int64(i) // record 0 sits at time 0
		attrs[i] = []float64{float64(i % 7)}
	}
	ds, err := data.New(times, attrs)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(func(string, ...interface{}) {})
	if err := srv.Add("zero", ds, nil, core.Options{}); err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ds, core.Options{})
	scorer := mustScorer(t, 1)

	base := Request{V: Version, Op: OpQuery, Dataset: "zero",
		QuerySpec: QuerySpec{K: 2, Tau: 3, Weights: []float64{1}}}

	legacy := srv.handle(&base)
	if !legacy.OK {
		t.Fatalf("legacy whole-span query: %s", legacy.Error)
	}
	wantSpan, err := eng.DurableTopK(core.Query{K: 2, Tau: 3, Start: 0, End: 49, Scorer: scorer})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Records) != len(wantSpan.Records) {
		t.Fatalf("legacy [0,0] answered %d records, whole span has %d",
			len(legacy.Records), len(wantSpan.Records))
	}

	explicit := base
	explicit.ExplicitInterval = true
	got := srv.handle(&explicit)
	if !got.OK {
		t.Fatalf("explicit [0,0] query: %s", got.Error)
	}
	want, err := eng.DurableTopK(core.Query{K: 2, Tau: 3, Start: 0, End: 0, Scorer: scorer})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("explicit [0,0]: got %d records, want %d", len(got.Records), len(want.Records))
	}
	for i, r := range got.Records {
		w := want.Records[i]
		if r.ID != w.ID || r.Time != w.Time || r.Score != w.Score {
			t.Fatalf("explicit [0,0] record %d: got %+v, want %+v", i, r, w)
		}
	}
	if reflect.DeepEqual(got.Records, legacy.Records) {
		t.Fatal("explicit [0,0] answered the whole span; the rewrite was not suppressed")
	}
}

func mustScorer(t *testing.T, weights ...float64) *score.Linear {
	t.Helper()
	s, err := score.NewLinear(weights)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestConnTimeoutPerIteration is the regression test for the timeout being
// read once per connection: a timeout installed while a connection is already
// serving must apply from its next request on, disconnecting the client once
// it idles past the bound.
func TestConnTimeoutPerIteration(t *testing.T) {
	srv := NewServer(func(string, ...interface{}) {})
	if err := srv.Add("games", testDataset(t, 50, 4), nil, core.Options{}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil { // connection established and serving
		t.Fatal(err)
	}

	srv.SetConnTimeout(75 * time.Millisecond)
	// One more request so the serving loop re-arms its read deadline with the
	// new timeout (the old code captured the value before the loop and would
	// never see it).
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // idle past the bound; server disconnects
	if err := cl.Ping(); err == nil {
		t.Fatal("connection survived idling past a timeout installed mid-connection")
	}
}

// TestResultCacheEpochInvalidation checks the whole-result cache end to end
// on a live dataset: an exact repeat at an unchanged epoch replays the stored
// response (pointer-identical), an append retires the epoch, and the
// recomputed answer is equal in content for an interval the append cannot
// affect.
func TestResultCacheEpochInvalidation(t *testing.T) {
	srv := NewServer(func(string, ...interface{}) {})
	cache := serve.NewCache(64)
	srv.SetCache(cache)
	le, err := srv.AddLive("live", 1, nil, core.Options{}, core.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if _, _, err := le.Append(int64(i), []float64{float64(i % 5)}); err != nil {
			t.Fatal(err)
		}
	}
	req := Request{V: Version, Op: OpQuery, Dataset: "live", QuerySpec: QuerySpec{
		K: 2, Tau: 4, Start: 1, End: 20, ExplicitInterval: true, Weights: []float64{1}}}

	r1 := srv.handle(&req)
	if !r1.OK {
		t.Fatalf("first query: %s", r1.Error)
	}
	r2 := srv.handle(&req)
	if r1 != r2 {
		t.Fatal("repeat at unchanged epoch was recomputed, not replayed")
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats after repeat: %+v", st)
	}

	// A later record cannot change look-back answers inside [1,20], but it
	// must still retire the cached entry — the cache may not know that.
	if _, _, err := le.Append(21, []float64{100}); err != nil {
		t.Fatal(err)
	}
	r3 := srv.handle(&req)
	if !r3.OK {
		t.Fatalf("post-append query: %s", r3.Error)
	}
	if r3 == r2 {
		t.Fatal("cache served a pre-append response after the epoch changed")
	}
	if !reflect.DeepEqual(r3.Records, r2.Records) {
		t.Fatalf("recomputed answer diverged: %+v vs %+v", r3.Records, r2.Records)
	}
}

// TestExprCompileCache checks that repeated expression sources compile once
// per dataset and that distinct sources stay distinct.
func TestExprCompileCache(t *testing.T) {
	srv := NewServer(func(string, ...interface{}) {})
	if err := srv.Add("games", testDataset(t, 50, 5), []string{"points", "assists"}, core.Options{}); err != nil {
		t.Fatal(err)
	}
	sv, err := srv.lookup("games")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := requestScorer(&Request{QuerySpec: QuerySpec{Expr: "points + 2*assists"}}, sv)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := requestScorer(&Request{QuerySpec: QuerySpec{Expr: "points + 2*assists"}}, sv)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("identical sources compiled twice; cache missed")
	}
	s3, err := requestScorer(&Request{QuerySpec: QuerySpec{Expr: "points"}}, sv)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("distinct sources collided in the compile cache")
	}
	if _, err := requestScorer(&Request{QuerySpec: QuerySpec{Expr: "points +"}}, sv); err == nil {
		t.Fatal("invalid expression compiled")
	}
}

// TestConcurrentServingStress drives the full concurrent path under the race
// detector: a live+sharded dataset ingests and seals while querier goroutines
// fire pipelined wire queries, and at quiesce barriers every strategy's
// answer — cached and uncached — is compared bit for bit against a fresh
// batch engine built over the exact same prefix. Scaled down but not skipped
// in -short mode so the CI race job runs it.
func TestConcurrentServingStress(t *testing.T) {
	batches, batchRows, queriers := 12, 50, 4
	if testing.Short() {
		batches, batchRows, queriers = 8, 30, 3
	}
	srv, cache, addr := startConcurrentServer(t, 4, 512)
	if _, err := srv.AddLiveSharded("stream", 2, nil, core.Options{},
		core.LiveOptions{}, core.LiveShardOptions{SealRows: 64}); err != nil {
		t.Fatal(err)
	}

	appender, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer appender.Close()

	var (
		mirrorTimes []int64
		mirrorAttrs [][]float64
		lastTime    atomic.Int64
	)
	rng := rand.New(rand.NewSource(42))
	appendBatch := func() {
		rows := make([]IngestRow, batchRows)
		for i := range rows {
			tm := lastTime.Load() + 1
			at := []float64{rng.Float64() * 50, rng.Float64() * 10}
			rows[i] = IngestRow{Time: tm, Attrs: at}
			mirrorTimes = append(mirrorTimes, tm)
			mirrorAttrs = append(mirrorAttrs, at)
			lastTime.Store(tm)
		}
		if resp, err := appender.Append("stream", rows); err != nil {
			t.Errorf("append: %v", err)
		} else if resp.Appended != batchRows {
			t.Errorf("append committed %d/%d rows", resp.Appended, batchRows)
		}
	}
	appendBatch() // queriers never see an empty dataset

	// Random read load for the whole run: small parameter pool so the cache
	// sees repeats, every response must be well-formed and OK.
	weightPool := [][]float64{{1, 0.5}, {0.2, 2}, {3, 0}}
	algoPool := []string{"", "t-base", "t-hop", "s-base", "s-band", "s-hop"}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Errorf("querier dial: %v", err)
				return
			}
			defer cl.Close()
			qrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := Request{Dataset: "stream", QuerySpec: QuerySpec{
					K:       1 + qrng.Intn(5),
					Tau:     int64(5 + qrng.Intn(20)),
					Weights: weightPool[qrng.Intn(len(weightPool))],
				}}
				req.Algorithm = algoPool[qrng.Intn(len(algoPool))]
				if max := lastTime.Load(); qrng.Intn(2) == 0 && max > 2 {
					a := 1 + qrng.Int63n(max-1)
					req.Start, req.End = a, a+qrng.Int63n(max-a)+1
					req.ExplicitInterval = true
				}
				if _, _, err := cl.Query(req); err != nil {
					t.Errorf("concurrent query %+v: %v", req, err)
					return
				}
			}
		}(int64(100 + g))
	}

	checker, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer checker.Close()

	// checkOne compares a wire answer (asked twice: cold, then likely cached)
	// against the batch engine built over the same prefix.
	checkOne := func(eng *core.Engine, span int64, req Request, q core.Query) {
		t.Helper()
		want, err := eng.DurableTopK(q)
		if err != nil {
			t.Fatalf("batch reference %+v: %v", q, err)
		}
		for round := 0; round < 2; round++ {
			recs, _, err := checker.Query(req)
			if err != nil {
				t.Fatalf("wire query %+v (round %d): %v", req, round, err)
			}
			if len(recs) != len(want.Records) {
				t.Fatalf("%s round %d: %d records, batch says %d",
					req.Algorithm, round, len(recs), len(want.Records))
			}
			for i, r := range recs {
				w := want.Records[i]
				if r.ID != w.ID || r.Time != w.Time || r.Score != w.Score || r.MaxDuration != w.MaxDuration {
					t.Fatalf("%s round %d record %d: wire %+v, batch %+v",
						req.Algorithm, round, i, r, w)
				}
			}
		}
	}

	barrier := func() {
		n := len(mirrorTimes)
		ds, err := data.New(mirrorTimes[:n:n], mirrorAttrs[:n:n])
		if err != nil {
			t.Fatal(err)
		}
		eng := core.NewEngine(ds, core.Options{})
		span := mirrorTimes[n-1]
		for _, algo := range []string{"t-base", "t-hop", "s-base", "s-band", "s-hop"} {
			alg, err := core.ParseAlgorithm(algo)
			if err != nil {
				t.Fatal(err)
			}
			req := Request{Dataset: "stream", QuerySpec: QuerySpec{K: 3, Tau: 20, Algorithm: algo,
				Weights: []float64{1, 0.5}, WithDurations: algo == "s-hop"}}
			q := core.Query{K: 3, Tau: 20, Start: 1, End: span, Algorithm: alg,
				Scorer: mustScorer(t, 1, 0.5), WithDurations: algo == "s-hop"}
			checkOne(eng, span, req, q)
		}
		// Look-ahead through the default strategy, and the most-durable
		// report, so both cached handlers face the moving dataset.
		req := Request{Dataset: "stream",
			QuerySpec: QuerySpec{K: 2, Tau: 15, Anchor: "look-ahead", Weights: []float64{0.2, 2}}}
		q := core.Query{K: 2, Tau: 15, Start: 1, End: span, Anchor: core.LookAhead,
			Scorer: mustScorer(t, 0.2, 2)}
		checkOne(eng, span, req, q)

		wantTop, err := eng.MostDurable(3, mustScorer(t, 1, 0.5), core.LookBack, 5)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ {
			recs, err := checker.MostDurable(Request{Dataset: "stream",
				QuerySpec: QuerySpec{K: 3, N: 5, Weights: []float64{1, 0.5}}})
			if err != nil {
				t.Fatalf("most-durable round %d: %v", round, err)
			}
			if len(recs) != len(wantTop) {
				t.Fatalf("most-durable round %d: %d records, batch says %d", round, len(recs), len(wantTop))
			}
			for i, r := range recs {
				w := wantTop[i]
				if r.ID != w.ID || r.Time != w.Time || r.Score != w.Score || r.MaxDuration != w.Duration {
					t.Fatalf("most-durable round %d record %d: wire %+v, batch %+v", round, i, r, w)
				}
			}
		}
	}

	for b := 1; b < batches; b++ {
		appendBatch()
		if b%3 == 0 {
			barrier()
		}
	}
	barrier()
	close(stop)
	wg.Wait()

	st := cache.Stats()
	if st.Hits == 0 {
		t.Error("whole-result cache never hit; repeats at stable epochs must replay")
	}
	if st.PartialHits == 0 {
		t.Error("per-shard partial cache never hit; sealed-shard interiors must be reused across epochs")
	}
	t.Logf("cache stats: %+v (hit rate %.2f)", st, st.HitRate())
}
