package wire

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/monitor"
	"repro/internal/sub"
)

// eventQueueDepth bounds how many event frames may be queued per connection
// awaiting the writer. A subscriber that falls this far behind the append
// stream is evicted (see connState.pushEvent) rather than silently losing
// events or stalling appends: every delivered event stream is gap-free.
const eventQueueDepth = 1024

// evictGrace bounds how long an eviction spends delivering the queued
// backlog and the terminal evicted frames to a slow subscriber before the
// connection is cut regardless. A watchdog closes the connection at twice
// this grace in case the writer itself is wedged in a deadline-less write.
const evictGrace = 2 * time.Second

// connState is one connection's protocol v2 state. Connections that never
// send a hello keep the zero-ish state from newConnState (v2 false, empty
// queue) and behave exactly as v1 — the fields cost nothing until used.
type connState struct {
	// v2 flips when a hello negotiates protocol v2. Written and read only by
	// the connection's read loop (hello is always handled inline).
	v2 bool
	// eventsOK records that the hello accepted the "events" feature flag;
	// subscriptions require it.
	eventsOK bool
	// backfillOK records that the hello accepted the "backfill" feature:
	// subscriptions on this connection are durable (they survive the
	// connection, resumable by SubKey), event frames carry sequence numbers,
	// and subscribe may anchor at a historical prefix.
	backfillOK bool

	// events carries server-initiated frames to the connection's writer,
	// which interleaves them with responses at frame granularity. Mostly
	// *Event; a resume handler also routes its acknowledgment *Response
	// through here so the ack precedes the replay backlog on one FIFO.
	events chan interface{}
	// evict signals the writer (buffered, never blocks) that pushEvent
	// overflowed: deliver the backlog and the terminal evicted frames, then
	// close. Only the CAS winner on dead sends, so one signal per life.
	evict chan struct{}
	// dead marks the connection undeliverable (write failure or event-queue
	// overflow); emitters stop enqueueing once set.
	dead atomic.Bool

	// mu guards the subscription table and progress map. Registry emit
	// closures take it only for the progress update in pushEvent; no code
	// path acquires the registry lock while holding mu, so the registry-lock
	// → mu order in emit closures cannot deadlock.
	mu      sync.Mutex
	nextSub uint64
	subs    map[uint64]connSub
	// progress records, per conn-local subscription id, the last event frame
	// enqueued for delivery — what the terminal evicted frame reports so a
	// resuming consumer knows where the stream stopped.
	progress map[uint64]subProgress
}

// subProgress is the last enqueued event position of one subscription.
type subProgress struct {
	seq    uint64
	prefix int
}

// connSub ties a conn-local subscription id to its dataset registry entry.
// Ids are conn-local because registry ids are per dataset: two subscriptions
// on different datasets could otherwise collide on one connection. durable
// marks registrations that outlive the connection (backfill feature): conn
// teardown detaches them for a later resume instead of dropping them.
type connSub struct {
	sv      *served
	regID   uint64
	durable bool
}

func newConnState() *connState {
	return &connState{
		events: make(chan interface{}, eventQueueDepth),
		evict:  make(chan struct{}, 1),
		subs:   make(map[uint64]connSub),
	}
}

// respDeferred is the sentinel a handler returns when it already routed its
// real response through the connection's event FIFO (handleResume's
// ack-before-backlog ordering); the writer skips the slot's write.
var respDeferred = &Response{}

// pushFrame enqueues an arbitrary frame (a resume acknowledgment) on the
// event FIFO without blocking; ok reports whether it was accepted. Unlike
// pushEvent an overflow here does not evict — the caller still holds the
// failure path for its request.
func (st *connState) pushFrame(frame interface{}) bool {
	if st.dead.Load() {
		return false
	}
	select {
	case st.events <- frame:
		return true
	default:
		return false
	}
}

// pushEvent enqueues one event frame for the connection's writer without
// blocking. Called from registry emit closures, which run under the registry
// lock on whatever goroutine committed the append — so it must never wait.
// On overflow the connection is evicted instead of dropping the frame: a
// subscriber that cannot keep up would otherwise see a silent gap in a
// stream whose whole point is that every verdict is accounted for. Eviction
// is announced (terminal evicted frames, written by the connection's writer)
// rather than a bare close, so the consumer can resume without guessing.
func (st *connState) pushEvent(ev *Event, conn net.Conn, logf func(string, ...interface{})) {
	if st.dead.Load() {
		return
	}
	select {
	case st.events <- ev:
		st.mu.Lock()
		if st.progress == nil {
			st.progress = make(map[uint64]subProgress)
		}
		st.progress[ev.SubID] = subProgress{seq: ev.Seq, prefix: ev.Prefix}
		st.mu.Unlock()
	default:
		if !st.dead.CompareAndSwap(false, true) {
			return
		}
		if logf != nil {
			logf("wire: %s: subscriber fell %d events behind; evicting", conn.RemoteAddr(), eventQueueDepth)
		}
		select {
		case st.evict <- struct{}{}:
		default:
		}
		// Backstop: if the writer never reaches the evict signal (wedged in a
		// deadline-less write to this very connection), cut the socket out
		// from under it after the grace has clearly been exhausted.
		time.AfterFunc(2*evictGrace, func() { conn.Close() })
	}
}

// evictConn runs on the connection's writer after pushEvent overflowed: no
// new events are being enqueued (dead is set), so the queue is quiescent.
// Deliver it, then one terminal evicted frame per live subscription carrying
// the last enqueued sequence number and prefix, then close. All writes share
// one absolute deadline so a stalled client cannot pin the writer.
func evictConn(conn net.Conn, st *connState) {
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(evictGrace))
	for {
		select {
		case ev := <-st.events:
			if err := WriteFrame(conn, ev); err != nil {
				return
			}
			continue
		default:
		}
		break
	}
	st.mu.Lock()
	type evicted struct {
		id uint64
		p  subProgress
	}
	list := make([]evicted, 0, len(st.subs))
	for id := range st.subs {
		list = append(list, evicted{id: id, p: st.progress[id]})
	}
	st.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	for _, e := range list {
		frame := &Event{V: Version2, Event: EventEvicted, SubID: e.id, Prefix: e.p.prefix, Seq: e.p.seq}
		if err := WriteFrame(conn, frame); err != nil {
			return
		}
	}
}

// handleHello negotiates the connection's protocol version: the result is
// min(client version, Version2), with feature flags intersected when v2 wins.
// The response's V carries the negotiated version — the one place a v1-shaped
// frame reports something other than the baseline version. The backfill
// feature is granted only alongside events (it refines the event stream);
// offering it without events yields neither.
func (s *Server) handleHello(req *Request, st *connState) *Response {
	if req.V < Version {
		return errResponse(fmt.Errorf("%w: %d (want %d or newer)", ErrBadVersion, req.V, Version))
	}
	if st.v2 {
		return errResponse(errors.New("wire: hello already negotiated on this connection"))
	}
	negotiated := req.V
	if negotiated > Version2 {
		negotiated = Version2
	}
	resp := &Response{V: negotiated, OK: true}
	if negotiated >= Version2 {
		st.v2 = true
		var wantEvents, wantBackfill bool
		for _, f := range req.Features {
			switch f {
			case FeatureEvents:
				wantEvents = true
			case FeatureBackfill:
				wantBackfill = true
			}
		}
		if wantEvents && !s.subsOff.Load() {
			st.eventsOK = true
			resp.Features = append(resp.Features, FeatureEvents)
			if wantBackfill {
				st.backfillOK = true
				resp.Features = append(resp.Features, FeatureBackfill)
			}
		}
	}
	return resp
}

// handleSubscribe registers a standing durable top-k query on a live dataset
// and starts pushing per-append event frames to this connection. On
// backfill-negotiated connections the registration is durable — the response
// carries its registry key (SubKey) and base prefix, its events carry
// sequence numbers, and a non-zero FromPrefix (marked by Backfill) anchors
// it at a historical prefix with the missed events replayed server-side
// before the live splice. A SubKey in the request resumes an existing
// durable registration instead of creating one.
func (s *Server) handleSubscribe(req *Request, st *connState, conn net.Conn) *Response {
	if !st.v2 {
		return errResponse(errors.New("wire: subscribe requires protocol v2 (send hello first)"))
	}
	if !st.eventsOK {
		return errResponse(errors.New("wire: subscribe requires the events feature (offer it in hello)"))
	}
	if (req.Backfill || req.SubKey != 0) && !st.backfillOK {
		return errResponse(errors.New("wire: backfill and resume require the backfill feature (offer it in hello)"))
	}
	sv, err := s.lookup(req.Dataset)
	if err != nil {
		return errResponse(err)
	}
	if sv.live == nil {
		return errResponse(fmt.Errorf("wire: dataset %q is not live; standing queries need an append stream", req.Dataset))
	}
	if req.SubKey != 0 {
		return s.handleResume(req, st, sv, conn)
	}
	scorer, err := requestScorer(req, sv)
	if err != nil {
		return errResponse(err)
	}
	spec := sub.Spec{Scorer: scorer, K: req.K, Tau: req.Tau}
	// The anchor selects which verdict stream the subscription receives:
	// look-back is the instant per-append decision, look-ahead the delayed
	// confirmation once a record's forward window closes, and the default is
	// both. Mid-anchored (general) windows have no online counterpart — the
	// monitor cannot decide them until lead has elapsed and confirm them
	// until tau-lead more has — so they are rejected rather than approximated.
	switch req.Anchor {
	case "":
		spec.Decisions, spec.Confirms = true, true
	case "look-back":
		spec.Decisions = true
	case "look-ahead":
		spec.Confirms = true
	default:
		return errResponse(fmt.Errorf("wire: subscribe supports look-back or look-ahead anchors, not %q", req.Anchor))
	}
	if req.Lead != 0 {
		return errResponse(errors.New("wire: subscribe does not support lead (mid-anchored windows have no online verdict)"))
	}
	if req.Start != 0 || req.End != 0 || req.ExplicitInterval {
		spec.Bounded, spec.Start, spec.End = true, req.Start, req.End
	}
	if st.backfillOK {
		// The persistable scorer recipe makes the registration durable: it
		// survives connection loss (resumable by key) and, on provider-backed
		// datasets, process restarts. Ephemeral v2.0 subscriptions carry no
		// Source and die with their connection, exactly as before — a crashed
		// v2.0 client cannot leak registrations.
		src := &sub.Source{}
		if len(req.Weights) > 0 {
			src.Weights = append([]float64(nil), req.Weights...)
		} else {
			src.Expr = req.Expr
			src.Names = sv.attrs
		}
		spec.Source = src
	}

	st.mu.Lock()
	st.nextSub++
	id := st.nextSub
	st.mu.Unlock()
	logf := s.logf
	emit := func(ev sub.Event) {
		st.pushEvent(subEventFrame(id, ev, st.backfillOK), conn, logf)
	}
	reg := sv.registry()
	// Read before Subscribe, so it can only undershoot the subscription's
	// true base: no event exists at or below an undershot base, hence a
	// consumer resuming "from base" can neither miss nor repeat anything.
	base := reg.Prefix()
	var regID uint64
	if req.Backfill {
		regID, err = reg.SubscribeFrom(spec, req.FromPrefix, emit, sv.rowSource())
		base = req.FromPrefix
	} else {
		regID, err = reg.Subscribe(spec, emit)
	}
	if err != nil {
		return errResponse(err)
	}
	if spec.Source != nil {
		// A durable registration is acknowledged only once it actually is
		// durable: provider-backed datasets persist the registry to the
		// checkpoint manifest before the response leaves. On failure the
		// registration rolls back — better no subscription than one that
		// silently evaporates on restart.
		if serr := sv.syncSubscriptions(); serr != nil {
			_ = reg.Unsubscribe(regID)
			return errResponse(fmt.Errorf("wire: subscription could not be made durable: %w", serr))
		}
		sv.claimSub(regID, st)
	}
	st.mu.Lock()
	st.subs[id] = connSub{sv: sv, regID: regID, durable: spec.Source != nil}
	st.mu.Unlock()
	resp := &Response{V: Version, OK: true, SubID: id}
	if st.backfillOK {
		resp.SubKey = regID
		resp.Base = base
	}
	return resp
}

// handleResume splices this connection onto an existing durable
// subscription: every event past req.FromPrefix — discarded while detached,
// lost in flight, or queued at the previous connection when it died — is
// re-derived from the committed rows and delivered (with its original
// sequence numbers) before the subscription resumes live delivery.
//
// The acknowledgment goes out ahead of the replay backlog: once the registry
// validates the resume (the ready hook), the ack is enqueued on the event
// FIFO, so on the wire the client sees ack, then backlog, then live events.
// Ack-first is what makes resume converge on a flaky link — the client
// records progress event by event as the backlog arrives, so each retry
// replays only the remainder; were the ack behind the backlog, a connection
// that dies mid-replay would leave the client with nothing and every retry
// would start over (a livelock once the backlog outgrows what the link
// delivers between failures). If the FIFO is momentarily full the ack falls
// back to the ordinary response slot — backlog first, exactly the old
// ordering, which the client demultiplexes just as well.
func (s *Server) handleResume(req *Request, st *connState, sv *served, conn net.Conn) *Response {
	if req.FromPrefix < 0 {
		return errResponse(fmt.Errorf("wire: resume fromPrefix %d must not be negative", req.FromPrefix))
	}
	st.mu.Lock()
	st.nextSub++
	id := st.nextSub
	st.mu.Unlock()
	logf := s.logf
	ackSent := false
	base, err := sv.resumeOwned(req.SubKey, req.FromPrefix, st, func(ev sub.Event) {
		st.pushEvent(subEventFrame(id, ev, true), conn, logf)
	}, func(base int) {
		ackSent = st.pushFrame(&Response{V: Version, OK: true, SubID: id, SubKey: req.SubKey, Base: base})
	})
	if err != nil {
		return errResponse(err)
	}
	st.mu.Lock()
	st.subs[id] = connSub{sv: sv, regID: req.SubKey, durable: true}
	st.mu.Unlock()
	if ackSent {
		return respDeferred
	}
	return &Response{V: Version, OK: true, SubID: id, SubKey: req.SubKey, Base: base}
}

// handleUnsubscribe drops a subscription — really drops it, durable or not:
// unsubscribe is the client saying "done", as opposed to the implicit
// detach of a vanishing connection. Its final event — the still-pending
// look-ahead candidates, flushed as truncated confirmations — is enqueued by
// the registry during the drop, and the writer flushes queued events before
// any response, so the final event always precedes this acknowledgment.
// A non-zero SubKey (with Dataset, backfill feature required) addresses a
// durable registration by key, letting a client retire a subscription it no
// longer holds a conn-local id for.
func (s *Server) handleUnsubscribe(req *Request, st *connState) *Response {
	if !st.v2 {
		return errResponse(errors.New("wire: unsubscribe requires protocol v2 (send hello first)"))
	}
	if req.SubKey != 0 {
		if !st.backfillOK {
			return errResponse(errors.New("wire: keyed unsubscribe requires the backfill feature (offer it in hello)"))
		}
		sv, err := s.lookup(req.Dataset)
		if err != nil {
			return errResponse(err)
		}
		reg := sv.loadRegistry()
		if reg == nil {
			return errResponse(fmt.Errorf("wire: %w", sub.ErrNotFound))
		}
		if err := reg.Unsubscribe(req.SubKey); err != nil {
			return errResponse(err)
		}
		sv.dropSubOwner(req.SubKey)
		// Retire any conn-local alias this connection holds for the key, so a
		// later conn-local unsubscribe doesn't double-drop.
		st.mu.Lock()
		for id, cs := range st.subs {
			if cs.sv == sv && cs.regID == req.SubKey {
				delete(st.subs, id)
			}
		}
		st.mu.Unlock()
		if err := sv.syncSubscriptions(); err != nil {
			return errResponse(fmt.Errorf("wire: subscription dropped but not yet durably: %w", err))
		}
		return &Response{V: Version, OK: true, SubKey: req.SubKey}
	}
	st.mu.Lock()
	cs, ok := st.subs[req.SubID]
	delete(st.subs, req.SubID)
	st.mu.Unlock()
	if !ok {
		return errResponse(fmt.Errorf("wire: no subscription %d on this connection", req.SubID))
	}
	if reg := cs.sv.loadRegistry(); reg != nil {
		if err := reg.Unsubscribe(cs.regID); err != nil {
			return errResponse(err)
		}
	}
	if cs.durable {
		cs.sv.dropSubOwner(cs.regID)
		if err := cs.sv.syncSubscriptions(); err != nil {
			return errResponse(fmt.Errorf("wire: subscription dropped but not yet durably: %w", err))
		}
	}
	return &Response{V: Version, OK: true, SubID: req.SubID}
}

// unsubscribeAll retires every subscription of a closing connection:
// ephemeral ones are dropped (flushing their final truncated confirmations
// into the event queue for the writer's shutdown drain); durable ones are
// detached — the registration stays, sequence numbers keep advancing, and a
// reconnecting consumer resumes by key with the gap replayed. The ownership
// check inside detachIfOwner keeps a stale connection's teardown from
// severing a subscription another connection has since resumed.
func (s *Server) unsubscribeAll(st *connState) {
	st.mu.Lock()
	subs := st.subs
	st.subs = make(map[uint64]connSub)
	st.mu.Unlock()
	for _, cs := range subs {
		if cs.durable {
			cs.sv.detachIfOwner(cs.regID, st)
			continue
		}
		if reg := cs.sv.loadRegistry(); reg != nil {
			_ = reg.Unsubscribe(cs.regID)
		}
	}
}

// subEventFrame converts a registry event into its wire frame, stamping the
// connection-local subscription id. Sequence numbers travel only on
// backfill-negotiated connections (withSeq): v2.0 frames stay byte-identical
// to what they always were.
func subEventFrame(id uint64, ev sub.Event, withSeq bool) *Event {
	frame := &Event{V: Version2, Event: EventSub, SubID: id, Prefix: ev.Prefix}
	if withSeq {
		frame.Seq = ev.Seq
	}
	if d := ev.Decision; d != nil {
		frame.Decision = &LiveDecision{ID: d.ID, Time: d.Time, Durable: d.Durable, Rank: d.Rank}
	}
	for _, c := range ev.Confirms {
		frame.Confirms = append(frame.Confirms, LiveConfirmation{
			ID: c.ID, Time: c.Time, Durable: c.Durable, Beaten: c.Beaten, Truncated: c.Truncated,
		})
	}
	return frame
}

// AppendRow commits one row into the named live dataset through the server's
// append path, so standing-query subscribers observe rows the embedder feeds
// directly (durserved's server-side ingest stream) exactly like wire appends.
// It deliberately bypasses the SetIngesting lockout — that lockout exists to
// protect this feed from interleaved wire appends, not the other way around.
func (s *Server) AppendRow(name string, t int64, attrs []float64) (monitor.Decision, []monitor.Confirmation, error) {
	sv, err := s.lookup(name)
	if err != nil {
		return monitor.Decision{}, nil, err
	}
	if sv.live == nil {
		return monitor.Decision{}, nil, fmt.Errorf("wire: dataset %q is not live", name)
	}
	return sv.appendRow(t, attrs, s.logf)
}
