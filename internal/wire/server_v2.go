package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/monitor"
	"repro/internal/sub"
)

// eventQueueDepth bounds how many event frames may be queued per connection
// awaiting the writer. A subscriber that falls this far behind the append
// stream is evicted (see connState.pushEvent) rather than silently losing
// events or stalling appends: every delivered event stream is gap-free.
const eventQueueDepth = 1024

// connState is one connection's protocol v2 state. Connections that never
// send a hello keep the zero-ish state from newConnState (v2 false, empty
// queue) and behave exactly as v1 — the fields cost nothing until used.
type connState struct {
	// v2 flips when a hello negotiates protocol v2. Written and read only by
	// the connection's read loop (hello is always handled inline).
	v2 bool
	// eventsOK records that the hello accepted the "events" feature flag;
	// subscriptions require it.
	eventsOK bool

	// events carries server-initiated frames to the connection's writer,
	// which interleaves them with responses at frame granularity.
	events chan *Event
	// dead marks the connection undeliverable (write failure or event-queue
	// overflow); emitters stop enqueueing once set.
	dead atomic.Bool

	// mu guards the subscription table. Registry emit closures never take it:
	// they capture their conn-local id by value.
	mu      sync.Mutex
	nextSub uint64
	subs    map[uint64]connSub
}

// connSub ties a conn-local subscription id to its dataset registry entry.
// Ids are conn-local because registry ids are per dataset: two subscriptions
// on different datasets could otherwise collide on one connection.
type connSub struct {
	sv    *served
	regID uint64
}

func newConnState() *connState {
	return &connState{
		events: make(chan *Event, eventQueueDepth),
		subs:   make(map[uint64]connSub),
	}
}

// pushEvent enqueues one event frame for the connection's writer without
// blocking. Called from registry emit closures, which run under the registry
// lock on whatever goroutine committed the append — so it must never wait.
// On overflow the connection is killed instead of dropping the frame: a
// subscriber that cannot keep up would otherwise see a silent gap in a
// stream whose whole point is that every verdict is accounted for.
func (st *connState) pushEvent(ev *Event, conn net.Conn, logf func(string, ...interface{})) {
	if st.dead.Load() {
		return
	}
	select {
	case st.events <- ev:
	default:
		st.dead.Store(true)
		if logf != nil {
			logf("wire: %s: subscriber fell %d events behind; disconnecting", conn.RemoteAddr(), eventQueueDepth)
		}
		// Closing the connection fails the read loop and the writer, which
		// tear the subscriptions down through the normal path.
		conn.Close()
	}
}

// handleHello negotiates the connection's protocol version: the result is
// min(client version, Version2), with feature flags intersected when v2 wins.
// The response's V carries the negotiated version — the one place a v1-shaped
// frame reports something other than the baseline version.
func (s *Server) handleHello(req *Request, st *connState) *Response {
	if req.V < Version {
		return errResponse(fmt.Errorf("%w: %d (want %d or newer)", ErrBadVersion, req.V, Version))
	}
	if st.v2 {
		return errResponse(errors.New("wire: hello already negotiated on this connection"))
	}
	negotiated := req.V
	if negotiated > Version2 {
		negotiated = Version2
	}
	resp := &Response{V: negotiated, OK: true}
	if negotiated >= Version2 {
		st.v2 = true
		for _, f := range req.Features {
			if f == FeatureEvents && !s.subsOff.Load() {
				st.eventsOK = true
				resp.Features = append(resp.Features, FeatureEvents)
			}
		}
	}
	return resp
}

// handleSubscribe registers a standing durable top-k query on a live dataset
// and starts pushing per-append event frames to this connection.
func (s *Server) handleSubscribe(req *Request, st *connState, conn net.Conn) *Response {
	if !st.v2 {
		return errResponse(errors.New("wire: subscribe requires protocol v2 (send hello first)"))
	}
	if !st.eventsOK {
		return errResponse(errors.New("wire: subscribe requires the events feature (offer it in hello)"))
	}
	sv, err := s.lookup(req.Dataset)
	if err != nil {
		return errResponse(err)
	}
	if sv.live == nil {
		return errResponse(fmt.Errorf("wire: dataset %q is not live; standing queries need an append stream", req.Dataset))
	}
	scorer, err := requestScorer(req, sv)
	if err != nil {
		return errResponse(err)
	}
	spec := sub.Spec{Scorer: scorer, K: req.K, Tau: req.Tau}
	// The anchor selects which verdict stream the subscription receives:
	// look-back is the instant per-append decision, look-ahead the delayed
	// confirmation once a record's forward window closes, and the default is
	// both. Mid-anchored (general) windows have no online counterpart — the
	// monitor cannot decide them until lead has elapsed and confirm them
	// until tau-lead more has — so they are rejected rather than approximated.
	switch req.Anchor {
	case "":
		spec.Decisions, spec.Confirms = true, true
	case "look-back":
		spec.Decisions = true
	case "look-ahead":
		spec.Confirms = true
	default:
		return errResponse(fmt.Errorf("wire: subscribe supports look-back or look-ahead anchors, not %q", req.Anchor))
	}
	if req.Lead != 0 {
		return errResponse(errors.New("wire: subscribe does not support lead (mid-anchored windows have no online verdict)"))
	}
	if req.Start != 0 || req.End != 0 || req.ExplicitInterval {
		spec.Bounded, spec.Start, spec.End = true, req.Start, req.End
	}

	st.mu.Lock()
	st.nextSub++
	id := st.nextSub
	st.mu.Unlock()
	logf := s.logf
	regID, err := sv.registry().Subscribe(spec, func(ev sub.Event) {
		st.pushEvent(subEventFrame(id, ev), conn, logf)
	})
	if err != nil {
		return errResponse(err)
	}
	st.mu.Lock()
	st.subs[id] = connSub{sv: sv, regID: regID}
	st.mu.Unlock()
	return &Response{V: Version, OK: true, SubID: id}
}

// handleUnsubscribe drops a subscription. Its final event — the still-pending
// look-ahead candidates, flushed as truncated confirmations — is enqueued by
// the registry during the drop, and the writer flushes queued events before
// any response, so the final event always precedes this acknowledgment.
func (s *Server) handleUnsubscribe(req *Request, st *connState) *Response {
	if !st.v2 {
		return errResponse(errors.New("wire: unsubscribe requires protocol v2 (send hello first)"))
	}
	st.mu.Lock()
	cs, ok := st.subs[req.SubID]
	delete(st.subs, req.SubID)
	st.mu.Unlock()
	if !ok {
		return errResponse(fmt.Errorf("wire: no subscription %d on this connection", req.SubID))
	}
	if reg := cs.sv.subReg.Load(); reg != nil {
		if err := reg.Unsubscribe(cs.regID); err != nil {
			return errResponse(err)
		}
	}
	return &Response{V: Version, OK: true, SubID: req.SubID}
}

// unsubscribeAll retires every subscription of a closing connection, flushing
// their final truncated confirmations into the event queue for the writer's
// shutdown drain.
func (s *Server) unsubscribeAll(st *connState) {
	st.mu.Lock()
	subs := st.subs
	st.subs = make(map[uint64]connSub)
	st.mu.Unlock()
	for _, cs := range subs {
		if reg := cs.sv.subReg.Load(); reg != nil {
			_ = reg.Unsubscribe(cs.regID)
		}
	}
}

// subEventFrame converts a registry event into its wire frame, stamping the
// connection-local subscription id.
func subEventFrame(id uint64, ev sub.Event) *Event {
	frame := &Event{V: Version2, Event: EventSub, SubID: id, Prefix: ev.Prefix}
	if d := ev.Decision; d != nil {
		frame.Decision = &LiveDecision{ID: d.ID, Time: d.Time, Durable: d.Durable, Rank: d.Rank}
	}
	for _, c := range ev.Confirms {
		frame.Confirms = append(frame.Confirms, LiveConfirmation{
			ID: c.ID, Time: c.Time, Durable: c.Durable, Beaten: c.Beaten, Truncated: c.Truncated,
		})
	}
	return frame
}

// AppendRow commits one row into the named live dataset through the server's
// append path, so standing-query subscribers observe rows the embedder feeds
// directly (durserved's server-side ingest stream) exactly like wire appends.
// It deliberately bypasses the SetIngesting lockout — that lockout exists to
// protect this feed from interleaved wire appends, not the other way around.
func (s *Server) AppendRow(name string, t int64, attrs []float64) (monitor.Decision, []monitor.Confirmation, error) {
	sv, err := s.lookup(name)
	if err != nil {
		return monitor.Decision{}, nil, err
	}
	if sv.live == nil {
		return monitor.Decision{}, nil, fmt.Errorf("wire: dataset %q is not live", name)
	}
	return sv.appendRow(t, attrs, s.logf)
}
