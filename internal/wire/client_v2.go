package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// subEventBuffer is each client subscription's event channel capacity. The
// reader goroutine never blocks delivering into it — a consumer that stops
// draining loses events locally (counted by Subscription.Dropped) instead of
// stalling responses for the whole client.
const subEventBuffer = 1024

// Hello negotiates the connection's protocol version, offering the given
// feature flags (FeatureEvents enables subscriptions). It returns the
// negotiated version and the feature subset the server accepted. Against a
// v1 server the call fails with a version error and the connection remains a
// perfectly good v1 session — clients that can work without subscriptions
// should treat that as a downgrade, not a failure.
//
// When v2 is negotiated the client hands its read side to a demultiplexer
// goroutine: responses still arrive strictly in request order, with
// server-pushed event frames routed to their subscriptions in between. The
// v1 request methods all keep working unchanged on top.
func (c *Client) Hello(features ...string) (int, []string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.respCh != nil {
		return 0, nil, errors.New("wire: hello already negotiated on this connection")
	}
	req := Request{V: Version2, Op: OpHello, Features: features}
	if err := WriteFrame(c.bw, &req); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	var resp Response
	if err := ReadFrame(c.br, &resp); err != nil {
		return 0, nil, err
	}
	if !resp.OK {
		return 0, nil, &ServerError{Msg: resp.Error, Transient: resp.Transient}
	}
	if resp.V >= Version2 {
		c.features = resp.Features
		c.respCh = make(chan *Response, 1)
		c.readDone = make(chan struct{})
		c.subMu.Lock()
		c.subs = make(map[uint64]*Subscription)
		c.pending = make(map[uint64][]Event)
		c.subMu.Unlock()
		go c.readLoop()
	}
	return resp.V, resp.Features, nil
}

// V2 reports whether this connection negotiated protocol v2.
func (c *Client) V2() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.respCh != nil
}

// Features returns the feature flags the server accepted at Hello.
func (c *Client) Features() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.features
}

// readLoop demultiplexes the connection's inbound frames on a v2 session:
// event frames (non-empty "event" key) route to their subscription, anything
// else is the response to the single in-flight request.
func (c *Client) readLoop() {
	defer close(c.readDone)
	for {
		payload, err := ReadRawFrame(c.br)
		if err != nil {
			c.failRead(err)
			return
		}
		var probe struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(payload, &probe); err != nil {
			c.failRead(fmt.Errorf("wire: decoding frame: %w", err))
			return
		}
		if probe.Event != "" {
			var ev Event
			if err := json.Unmarshal(payload, &ev); err != nil {
				c.failRead(fmt.Errorf("wire: decoding event frame: %w", err))
				return
			}
			c.dispatchEvent(&ev)
			continue
		}
		var resp Response
		if err := json.Unmarshal(payload, &resp); err != nil {
			c.failRead(fmt.Errorf("wire: decoding frame: %w", err))
			return
		}
		// Buffered (capacity 1): with one request in flight there is at most
		// one routable response, so this never blocks the demultiplexer.
		c.respCh <- &resp
	}
}

// failRead records the terminal read error, wakes the in-flight request (if
// any) and closes every subscription's event channel so consumers observe
// the end of their streams. c.subs goes nil — the marker Subscribe checks to
// learn the reader died under it — but c.pending survives: a Subscribe whose
// response was already in flight claims its parked events from there, so a
// page the server delivered right before closing (an eviction's backlog) is
// handed to the consumer instead of vanishing.
func (c *Client) failRead(err error) {
	c.subMu.Lock()
	c.readErr = err
	subs := c.subs
	c.subs = nil
	c.subMu.Unlock()
	close(c.respCh)
	for _, s := range subs {
		close(s.events)
	}
}

// readError renders the reason the demultiplexer stopped.
func (c *Client) readError() error {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return errors.New("wire: connection closed")
}

// dispatchEvent routes one event frame. Events can legitimately arrive for a
// subscription whose subscribe response is still in flight — the server may
// interleave an append's verdicts ahead of the acknowledgment — so unknown
// ids above the acknowledged watermark are parked and replayed, in order,
// when Subscribe learns its id. Ids at or below the watermark belong to
// subscriptions already torn down; those frames are dropped.
func (c *Client) dispatchEvent(ev *Event) {
	c.subMu.Lock()
	if s := c.subs[ev.SubID]; s != nil {
		c.subMu.Unlock()
		s.deliver(*ev)
		return
	}
	if c.pending != nil && ev.SubID > c.maxSub {
		c.pending[ev.SubID] = append(c.pending[ev.SubID], *ev)
	}
	c.subMu.Unlock()
}

// Subscription is a standing durable top-k query held on one client
// connection. Events arrive on Events() in append order, gap-free unless the
// consumer falls behind (see Dropped).
type Subscription struct {
	id      uint64
	subKey  uint64
	base    int
	c       *Client
	events  chan Event
	dropped atomic.Int64
}

func (s *Subscription) deliver(ev Event) {
	select {
	case s.events <- ev:
	default:
		s.dropped.Add(1)
	}
}

// ID returns the server-assigned (connection-local) subscription id.
func (s *Subscription) ID() uint64 { return s.id }

// SubKey returns the subscription's durable registry key, or zero on
// connections that did not negotiate the backfill feature. The key outlives
// this connection: a later connection resumes the subscription by sending it
// in a subscribe request (with FromPrefix naming the last event received).
func (s *Subscription) SubKey() uint64 { return s.subKey }

// Base returns the committed prefix the subscription's verdicts start after,
// as reported by a backfill-negotiated subscribe; zero otherwise. A consumer
// that has received no events yet resumes from Base.
func (s *Subscription) Base() int { return s.base }

// Events is the subscription's verdict stream. It closes when the
// subscription is dropped (Unsubscribe) or the connection dies; consumers
// should drain promptly — the channel buffers subEventBuffer frames and the
// client drops, counting, beyond that.
func (s *Subscription) Events() <-chan Event { return s.events }

// Dropped reports how many events were discarded because the consumer let
// the channel buffer fill. The server-side stream itself is gap-free: a
// nonzero count means this process fell behind, not the protocol.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Subscribe registers a standing query on a live dataset and returns its
// event stream. The request carries Dataset plus the query parameters
// (K, Tau, Weights or Expr, optional Anchor and interval); see the server's
// subscribe contract for what is accepted. Requires a v2 session with the
// events feature (Hello(FeatureEvents)).
func (c *Client) Subscribe(req Request) (*Subscription, error) {
	if !c.V2() {
		return nil, errors.New("wire: subscribe requires protocol v2 (call Hello first)")
	}
	req.Op = OpSubscribe
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	s := &Subscription{id: resp.SubID, subKey: resp.SubKey, base: resp.Base, c: c, events: make(chan Event, subEventBuffer)}
	c.subMu.Lock()
	if c.subs == nil {
		// The reader died between the response and here. Frames it parked
		// for this subscription before dying still count — a server that
		// evicts immediately after replaying a backlog page closes exactly
		// this way, and dropping the page would cost the consumer progress
		// it already paid for — so deliver them, then close.
		for _, ev := range c.pending[resp.SubID] {
			s.deliver(ev)
		}
		delete(c.pending, resp.SubID)
		c.subMu.Unlock()
		close(s.events)
		return s, nil
	}
	if resp.SubID > c.maxSub {
		c.maxSub = resp.SubID
	}
	for _, ev := range c.pending[resp.SubID] {
		s.deliver(ev)
	}
	delete(c.pending, resp.SubID)
	c.subs[resp.SubID] = s
	c.subMu.Unlock()
	return s, nil
}

// Unsubscribe drops a standing query. The server flushes the subscription's
// still-pending look-ahead candidates as one final truncated event before
// acknowledging, so by the time Unsubscribe returns the final event has been
// delivered and the subscription's channel is closed.
func (c *Client) Unsubscribe(s *Subscription) error {
	_, err := c.do(Request{Op: OpUnsubscribe, SubID: s.id})
	if err != nil {
		return err
	}
	// The acknowledgment was routed by the reader after every earlier frame —
	// the final event included — so closing here cannot race a delivery.
	c.subMu.Lock()
	_, live := c.subs[s.id]
	delete(c.subs, s.id)
	c.subMu.Unlock()
	if live {
		close(s.events)
	}
	return nil
}

// Follower maintains a standing query across reconnects: it dials, upgrades
// to v2 offering the events and backfill features, subscribes, and forwards
// events to one channel; when the connection dies it re-dials under the
// retry policy and splices back into the stream.
//
// Against a backfill-capable server the merged stream is gap-free and
// duplicate-free: the first subscribe yields a durable registry key, each
// reconnect resumes that key from the last event received, the server
// replays everything missed before going live, and sequence numbers let the
// follower drop the rare overlap a conservative resume point produces. A
// server-side eviction (the follower fell too far behind) announces itself
// with a terminal evicted frame; the follower swallows it, counts it
// (Evictions) and resumes exactly like any other disconnect. Only if a
// resume is rejected — the registration no longer exists, e.g. a restart of
// a server that does not persist its registry — does the follower fall back
// to a fresh subscription, counting the seam in Resets; verdicts for rows
// appended before the fresh base are then permanently missed, exactly the
// legacy behavior.
//
// Against a server that grants only the events feature every reconnect
// re-registers fresh — the new subscription's monitor starts from the
// dataset's then-current prefix, so verdicts for rows appended while
// disconnected are not replayed. Consumers detect the seam by the jump in
// Event.Prefix (and can re-query the interval to backfill).
type Follower struct {
	addr   string
	req    Request
	policy RetryPolicy

	events chan Event
	stop   chan struct{}

	// Resume state, touched only by the follower's own goroutine (Follow's
	// synchronous first connect included — run starts after).
	backfill   bool
	subKey     uint64
	lastPrefix int
	lastSeq    uint64

	reconnects atomic.Int64
	resets     atomic.Int64
	evictions  atomic.Int64
	err        atomic.Pointer[error]
}

// Follow starts a follower for the given subscribe request against addr.
// The initial connection is established synchronously so misconfiguration
// (bad address, unknown dataset, invalid query) fails fast; subsequent
// reconnects happen in the background.
func Follow(addr string, req Request, p RetryPolicy) (*Follower, error) {
	p = p.withDefaults()
	f := &Follower{
		addr: addr, req: req, policy: p,
		events: make(chan Event, subEventBuffer),
		stop:   make(chan struct{}),
	}
	c, s, err := f.connect()
	if err != nil {
		return nil, err
	}
	go f.run(c, s)
	return f, nil
}

// connect establishes a subscribed session under the retry policy. Transport
// failures — the dial itself, or a connection cut mid-handshake — back off
// and retry like any other disconnect; only a server that answers with a
// permanent rejection (bad dataset, invalid query) fails fast, because
// misconfiguration does not heal by redialing.
func (f *Follower) connect() (*Client, *Subscription, error) {
	var deadline time.Time
	if f.policy.MaxElapsed > 0 {
		deadline = time.Now().Add(f.policy.MaxElapsed)
	}
	delay := f.policy.BaseDelay
	for attempt := 1; ; attempt++ {
		select {
		case <-f.stop:
			return nil, nil, errors.New("wire: follower closed")
		default:
		}
		c, s, err := f.connectOnce()
		if err == nil {
			return c, s, nil
		}
		var se *ServerError
		if errors.As(err, &se) && !se.Transient {
			return nil, nil, err
		}
		if attempt >= f.policy.MaxAttempts ||
			(!deadline.IsZero() && !time.Now().Before(deadline)) {
			return nil, nil, err
		}
		delay = f.policy.sleep(delay)
	}
}

// connectOnce dials, negotiates v2 offering events+backfill, and subscribes:
// resuming the durable registration when one exists, registering fresh
// otherwise.
func (f *Follower) connectOnce() (*Client, *Subscription, error) {
	c, err := Dial(f.addr)
	if err != nil {
		return nil, nil, err
	}
	_, feats, err := c.Hello(FeatureEvents, FeatureBackfill)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	backfill := false
	for _, ft := range feats {
		if ft == FeatureBackfill {
			backfill = true
		}
	}
	if backfill && f.subKey != 0 {
		req := f.req
		req.SubKey = f.subKey
		req.FromPrefix = f.lastPrefix
		s, err := c.Subscribe(req)
		if err == nil {
			f.backfill = true
			return c, s, nil
		}
		var se *ServerError
		if !errors.As(err, &se) {
			// The connection died under the resume request; nothing was
			// rejected and the key is still good. Retry the whole handshake.
			c.Close()
			return nil, nil, err
		}
		// The server answered no: the registration is gone (dropped, or the
		// server restarted without a durable registry). Fall back to a fresh
		// subscription: a seam, not a failure — but a counted one.
		f.resets.Add(1)
		f.subKey = 0
	}
	s, err := c.Subscribe(f.req)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	f.backfill = backfill
	if backfill {
		f.subKey = s.SubKey()
		f.lastPrefix = s.Base()
		f.lastSeq = 0
	}
	return c, s, nil
}

func (f *Follower) run(c *Client, s *Subscription) {
	defer close(f.events)
	for {
		if !f.forward(c, s) {
			c.Close()
			return
		}
		// The subscription's stream ended: the connection is gone. Re-dial
		// and re-subscribe until stopped or the policy gives up.
		c.Close()
		select {
		case <-f.stop:
			return
		default:
		}
		var err error
		c, s, err = f.connect()
		if err != nil {
			f.err.Store(&err)
			return
		}
		f.reconnects.Add(1)
	}
}

// forward drains one subscription until its stream closes (false to stop
// following entirely, true to reconnect).
func (f *Follower) forward(c *Client, s *Subscription) bool {
	for {
		select {
		case <-f.stop:
			// Best-effort clean teardown: the final truncated event is
			// forwarded if it fits, then the stream ends.
			if err := c.Unsubscribe(s); err == nil {
				for ev := range s.Events() {
					select {
					case f.events <- ev:
					default:
					}
				}
			}
			return false
		case ev, ok := <-s.Events():
			if !ok {
				return true
			}
			if ev.Event == EventEvicted {
				// The server is cutting this connection for falling behind;
				// the frame is bookkeeping, not a verdict. The stream closes
				// next, and the normal resume path replays from lastPrefix.
				f.evictions.Add(1)
				continue
			}
			if f.backfill && ev.Seq != 0 && ev.Seq <= f.lastSeq {
				// A conservative resume point replayed an event already
				// forwarded; the deterministic sequence numbers expose it.
				continue
			}
			select {
			case f.events <- ev:
			case <-f.stop:
				return false
			}
			if f.backfill {
				if ev.Seq != 0 {
					f.lastSeq = ev.Seq
				}
				f.lastPrefix = ev.Prefix
			}
		}
	}
}

// Events is the follower's merged verdict stream across reconnects. It
// closes when Close is called or reconnection gives up (see Err).
func (f *Follower) Events() <-chan Event { return f.events }

// Reconnects reports how many times the follower re-established its
// subscription after losing a connection.
func (f *Follower) Reconnects() int64 { return f.reconnects.Load() }

// Resets reports how many reconnects could not resume the durable
// registration and fell back to a fresh subscription — each one a seam in
// the stream where verdicts for rows appended while disconnected were
// permanently missed. Zero against a server with a durable registry.
func (f *Follower) Resets() int64 { return f.resets.Load() }

// Evictions reports how many times the server evicted this follower for
// falling behind the event stream. Evictions are not seams: the follower
// resumes from its last received event with the gap replayed.
func (f *Follower) Evictions() int64 { return f.evictions.Load() }

// Err reports why the follower stopped, or nil if it is running or was
// closed deliberately.
func (f *Follower) Err() error {
	if p := f.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Close stops following and closes the event stream. Safe to call once.
func (f *Follower) Close() {
	close(f.stop)
}
