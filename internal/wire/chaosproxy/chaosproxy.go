// Package chaosproxy is a deliberately unreliable TCP relay for torturing
// the wire protocol: it forwards bytes between a client and a real server
// while injecting, from a seeded deterministic schedule, the failure modes a
// flaky network produces — connection cuts after a random byte budget
// (which lands mid-frame far more often than not, exercising truncated-frame
// handling on both peers), partial writes (frames dribbled out in small
// chunks), and per-chunk delays. It never corrupts bytes it does deliver:
// the protocol's length-prefixed framing treats corruption and truncation
// identically (the JSON fails to parse or the read comes up short), and
// truncation is the variant a real TCP failure produces.
//
// The schedule derives entirely from the seed and the order in which
// connections arrive, so a failing run reproduces with its seed. Byte counts
// and cut decisions are per-connection, not global, keeping concurrent
// connections independent.
package chaosproxy

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes the injected chaos. The zero value forwards faithfully
// (infinite budget, whole-buffer writes, no delay) — useful as a control.
type Options struct {
	// Seed drives every random decision. Runs with the same seed and the
	// same connection arrival order inject identical chaos.
	Seed int64

	// MinBytes/MaxBytes bound the per-connection byte budget: once a
	// connection has relayed a budget drawn uniformly from [MinBytes,
	// MaxBytes), both sides are severed immediately — usually mid-frame.
	// MaxBytes <= 0 disables cutting.
	MinBytes, MaxBytes int64

	// MaxChunk > 0 relays in chunks of 1..MaxChunk bytes instead of whole
	// buffers, so peers see partial writes and short reads.
	MaxChunk int

	// MaxDelay > 0 sleeps up to MaxDelay before each relayed chunk.
	MaxDelay time.Duration
}

// Proxy is one listening relay in front of a target address.
type Proxy struct {
	ln     net.Listener
	target string
	opts   Options

	rngMu sync.Mutex
	rng   *rand.Rand

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	cuts    atomic.Int64
	relayed atomic.Int64
}

// New starts a proxy on a fresh loopback port relaying to target.
func New(target string, opts Options) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln: ln, target: target, opts: opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		conns: make(map[net.Conn]struct{}),
	}
	go p.accept()
	return p, nil
}

// Addr is the address clients dial instead of the real server.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Cuts reports how many connections the proxy severed on budget exhaustion
// (CutAll and Close are not counted — only scheduled chaos).
func (p *Proxy) Cuts() int64 { return p.cuts.Load() }

// Relayed reports the total bytes faithfully forwarded, both directions.
func (p *Proxy) Relayed() int64 { return p.relayed.Load() }

// CutAll severs every live connection immediately, leaving the listener up:
// the next dial goes through. Use it to force a reconnect at a chosen point.
func (p *Proxy) CutAll() {
	p.connMu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.connMu.Unlock()
}

// Close stops the listener and severs everything.
func (p *Proxy) Close() error {
	p.connMu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.connMu.Unlock()
	return p.ln.Close()
}

func (p *Proxy) accept() {
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			down.Close()
			continue
		}
		if !p.track(down, up) {
			return
		}
		go p.relay(down, up)
	}
}

// track registers the pair for CutAll/Close, refusing after Close.
func (p *Proxy) track(down, up net.Conn) bool {
	p.connMu.Lock()
	defer p.connMu.Unlock()
	if p.closed {
		down.Close()
		up.Close()
		return false
	}
	p.conns[down] = struct{}{}
	p.conns[up] = struct{}{}
	return true
}

func (p *Proxy) untrack(down, up net.Conn) {
	p.connMu.Lock()
	delete(p.conns, down)
	delete(p.conns, up)
	p.connMu.Unlock()
}

// relay shuttles both directions until the budget expires or either side
// closes. The budget is shared across directions, so a cut can land inside
// a request frame just as easily as inside an event frame.
func (p *Proxy) relay(down, up net.Conn) {
	defer p.untrack(down, up)
	defer down.Close()
	defer up.Close()

	budget := int64(-1)
	if p.opts.MaxBytes > 0 {
		span := p.opts.MaxBytes - p.opts.MinBytes
		if span < 1 {
			span = 1
		}
		p.rngMu.Lock()
		budget = p.opts.MinBytes + p.rng.Int63n(span)
		p.rngMu.Unlock()
	}
	var remaining atomic.Int64
	remaining.Store(budget)

	var wg sync.WaitGroup
	cut := func() {
		p.cuts.Add(1)
		down.Close()
		up.Close()
	}
	pipe := func(dst, src net.Conn) {
		defer wg.Done()
		// Closing both sides on either direction's exit models a real TCP
		// reset: the peer cannot be half-alive across a proxy.
		defer down.Close()
		defer up.Close()
		buf := make([]byte, 32*1024)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if !p.forward(dst, buf[:n], &remaining, cut) {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}
	wg.Add(2)
	go pipe(up, down)
	go pipe(down, up)
	wg.Wait()
}

// forward writes b to dst under the chaos schedule, returning false once the
// connection was cut. Bytes beyond the budget are never delivered — the
// receiver sees a clean mid-frame truncation, not reordered tails.
func (p *Proxy) forward(dst net.Conn, b []byte, remaining *atomic.Int64, cut func()) bool {
	for len(b) > 0 {
		chunk := len(b)
		var delay time.Duration
		if p.opts.MaxChunk > 0 || p.opts.MaxDelay > 0 {
			p.rngMu.Lock()
			if p.opts.MaxChunk > 0 && chunk > 1 {
				if c := 1 + p.rng.Intn(p.opts.MaxChunk); c < chunk {
					chunk = c
				}
			}
			if p.opts.MaxDelay > 0 {
				delay = time.Duration(p.rng.Int63n(int64(p.opts.MaxDelay)))
			}
			p.rngMu.Unlock()
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		piece := b[:chunk]
		if r := remaining.Load(); r >= 0 {
			if r == 0 {
				cut()
				return false
			}
			if int64(len(piece)) > r {
				piece = piece[:r]
			}
		}
		n, err := dst.Write(piece)
		p.relayed.Add(int64(n))
		if r := remaining.Load(); r >= 0 {
			if remaining.Add(-int64(n)) <= 0 {
				cut()
				return false
			}
		}
		if err != nil {
			return false
		}
		b = b[n:]
	}
	return true
}
