package wire

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/wal"
	"repro/internal/wire/chaosproxy"
)

// TestFollowerUnderWireChaos drives a durable standing query through a
// deliberately hostile network: a chaosproxy between the Follower and a
// store-backed server cuts every connection after a few KB (almost always
// mid-frame), dribbles bytes in tiny chunks, and jitters delivery — while
// rows keep committing. The Follower must reconnect and resume by key each
// time, and the merged event stream it hands the application must be exactly
// the stream a never-disconnected subscriber would have seen: one event per
// committed prefix, strictly contiguous, no duplicates, with every verdict
// re-derived bit-identically by batch queries over the exact prefix each
// event names — across all five strategies.
func TestFollowerUnderWireChaos(t *testing.T) {
	rows := 200
	if testing.Short() {
		rows = 80
	}
	fs := wal.NewMemFS()
	srv, st, addr := startStoreServer(t, fs, "db")
	defer srv.Close()
	defer st.Close()

	proxy, err := chaosproxy.New(addr, chaosproxy.Options{
		Seed:     7,
		MinBytes: 1024, MaxBytes: 6144,
		MaxChunk: 13,
		MaxDelay: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const k, tau = 2, 8
	weights := []float64{1, 0.5}
	f, err := Follow(proxy.Addr(), Request{Dataset: "stream",
		QuerySpec: QuerySpec{K: k, Tau: tau, Weights: weights}},
		RetryPolicy{MaxAttempts: 1 << 16, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Commit rows directly on the store (the appender is not under test);
	// mirror the exact committed stream for the re-derivation below. Light
	// pacing interleaves live delivery with the replay-after-cut path.
	rng := rand.New(rand.NewSource(42))
	var (
		mirrorTimes []int64
		mirrorAttrs [][]float64
		tm          int64
	)
	for i := 0; i < rows; i++ {
		tm += int64(1 + rng.Intn(3))
		attrs := []float64{rng.Float64() * 50, rng.Float64() * 10}
		if _, _, err := st.Append(tm, attrs); err != nil {
			t.Fatal(err)
		}
		mirrorTimes = append(mirrorTimes, tm)
		mirrorAttrs = append(mirrorAttrs, attrs)
		if i%10 == 9 {
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Collect until the event naming the final committed prefix arrives.
	// Contiguity is the whole claim: prefix P+1 right after P, every time,
	// regardless of how many connections died in between.
	var events []Event
	lastPrefix := 0
	deadline := time.After(60 * time.Second)
	for lastPrefix < rows {
		select {
		case ev, ok := <-f.Events():
			if !ok {
				t.Fatalf("follower stream died at prefix %d: %v", lastPrefix, f.Err())
			}
			if ev.Prefix != lastPrefix+1 {
				t.Fatalf("merged stream not gap-free: prefix %d after %d (reconnects=%d)",
					ev.Prefix, lastPrefix, f.Reconnects())
			}
			lastPrefix = ev.Prefix
			events = append(events, ev)
		case <-deadline:
			t.Fatalf("stalled at prefix %d/%d (reconnects=%d cuts=%d): %v",
				lastPrefix, rows, f.Reconnects(), proxy.Cuts(), f.Err())
		}
	}

	// The chaos must actually have happened, and every recovery must have
	// been a durable resume — never a fresh-subscription reset (which would
	// re-deliver history) and never an eviction.
	if proxy.Cuts() == 0 {
		t.Fatal("proxy never cut a connection; chaos schedule too lenient")
	}
	if f.Reconnects() == 0 {
		t.Fatal("follower never reconnected")
	}
	if got := f.Resets(); got != 0 {
		t.Fatalf("%d resets: a durable resume was rejected and history re-delivered", got)
	}
	if got := f.Evictions(); got != 0 {
		t.Fatalf("follower was evicted %d times", got)
	}
	t.Logf("survived %d cuts / %d reconnects over %d relayed bytes",
		proxy.Cuts(), f.Reconnects(), proxy.Relayed())

	// Re-derive every pushed verdict from batch engines over the exact
	// prefix each event named, across all five strategies — the same bar
	// TestStandingQueryStress sets for the chaos-free path.
	engines := make(map[int]*core.Engine)
	engineAt := func(prefix int) *core.Engine {
		if e, ok := engines[prefix]; ok {
			return e
		}
		ds, err := data.New(mirrorTimes[:prefix:prefix], mirrorAttrs[:prefix:prefix])
		if err != nil {
			t.Fatal(err)
		}
		e := core.NewEngine(ds, core.Options{})
		engines[prefix] = e
		return e
	}
	strategies := []core.Algorithm{core.TBase, core.THop, core.SBase, core.SBand, core.SHop}
	verify := func(prefix, id int, evTime int64, durable, ahead bool) {
		t.Helper()
		if id >= prefix {
			t.Fatalf("verdict names record %d beyond its prefix %d", id, prefix)
		}
		if mirrorTimes[id] != evTime {
			t.Fatalf("record %d: event time %d, stream committed %d", id, evTime, mirrorTimes[id])
		}
		anchor := core.LookBack
		if ahead {
			anchor = core.LookAhead
		}
		eng := engineAt(prefix)
		for _, alg := range strategies {
			res, err := eng.DurableTopK(core.Query{
				K: k, Tau: tau, Start: evTime, End: evTime,
				Scorer: score.MustLinear(weights...), Anchor: anchor, Algorithm: alg,
			})
			if err != nil {
				t.Fatalf("reference query (%v): %v", alg, err)
			}
			found := false
			for _, r := range res.Records {
				if r.ID == id {
					found = true
				}
			}
			if found != durable {
				t.Fatalf("prefix %d record %d (ahead=%v): pushed durable=%v, %v re-derives %v",
					prefix, id, ahead, durable, alg, found)
			}
		}
	}
	decisions, confirms := 0, 0
	for _, ev := range events {
		if d := ev.Decision; d != nil {
			decisions++
			if d.ID != ev.Prefix-1 || d.Time != mirrorTimes[ev.Prefix-1] {
				t.Fatalf("decision %+v does not describe prefix %d's append", d, ev.Prefix)
			}
			verify(ev.Prefix, d.ID, d.Time, d.Durable, false)
		}
		for _, c := range ev.Confirms {
			if c.Truncated {
				continue
			}
			confirms++
			verify(ev.Prefix, c.ID, c.Time, c.Durable, true)
		}
	}
	if decisions != rows {
		t.Fatalf("merged stream carries %d decisions over %d committed rows", decisions, rows)
	}
	if confirms == 0 {
		t.Fatal("no look-ahead confirmations flowed; raise rows or shrink tau")
	}
	t.Logf("re-derived %d decisions and %d confirmations across %d strategies",
		decisions, confirms, len(strategies))
}

// TestChaosProxyControl pins the proxy's zero-chaos mode: with no budget, no
// chunking and no delay it must be a faithful relay — the full protocol
// session works through it unchanged. This keeps chaos findings attributable
// to the schedule, not to relay bugs.
func TestChaosProxyControl(t *testing.T) {
	fs := wal.NewMemFS()
	srv, st, addr := startStoreServer(t, fs, "db")
	defer srv.Close()
	defer st.Close()
	proxy, err := chaosproxy.New(addr, chaosproxy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cl := dialT(t, proxy.Addr())
	if _, _, err := cl.Hello(FeatureEvents, FeatureBackfill); err != nil {
		t.Fatal(err)
	}
	s, err := cl.Subscribe(Request{Dataset: "stream",
		QuerySpec: QuerySpec{K: 1, Tau: 1 << 40, Anchor: "look-back", Weights: []float64{1, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if s.SubKey() == 0 {
		t.Fatal("no durable key through the control proxy")
	}
	for i := 1; i <= 20; i++ {
		if _, err := cl.Append("stream", []IngestRow{{Time: int64(i), Attrs: []float64{float64(i), 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	for prefix := 1; prefix <= 20; prefix++ {
		select {
		case ev := <-s.Events():
			if ev.Prefix != prefix || ev.Seq != uint64(prefix) {
				t.Fatalf("control relay disturbed the stream: %+v at prefix %d", ev, prefix)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("control relay stalled at prefix %d", prefix)
		}
	}
	if proxy.Cuts() != 0 {
		t.Fatalf("control proxy cut %d connections", proxy.Cuts())
	}
}
