package wire

import (
	"testing"
	"time"

	"repro/internal/wal"
)

// TestResumePaginatesHugeBacklog pins the evict/resume pagination contract
// for backlogs larger than the per-connection event queue: a durable
// subscription detaches, far more rows commit than eventQueueDepth can hold,
// and a raw client catches up by resuming, draining until the terminal
// evicted frame (or EOF), and resuming again from the last prefix it holds.
// Every page must be gap-free and the union must cover the whole stream.
func TestResumePaginatesHugeBacklog(t *testing.T) {
	const rows = 3 * eventQueueDepth
	fs := wal.NewMemFS()
	srv, st, addr := startStoreServer(t, fs, "db")
	defer srv.Close()
	defer st.Close()

	cl := dialT(t, addr)
	if _, _, err := cl.Hello(FeatureEvents, FeatureBackfill); err != nil {
		t.Fatal(err)
	}
	s, err := cl.Subscribe(Request{Dataset: "stream",
		QuerySpec: QuerySpec{K: 1, Tau: 1 << 40, Anchor: "look-back", Weights: []float64{1, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	key := s.SubKey()
	if key == 0 {
		t.Fatal("no durable key")
	}
	cl.Close()

	for i := 1; i <= rows; i++ {
		if _, _, err := st.Append(int64(i), []float64{float64(i), 1}); err != nil {
			t.Fatal(err)
		}
	}

	lastPrefix, pages := 0, 0
	for lastPrefix < rows {
		pages++
		if pages > rows {
			t.Fatalf("no forward progress: %d resumes for %d rows", pages, rows)
		}
		rcl := dialT(t, addr)
		if _, _, err := rcl.Hello(FeatureEvents, FeatureBackfill); err != nil {
			t.Fatal(err)
		}
		rs, err := rcl.Subscribe(Request{Dataset: "stream", SubKey: key, FromPrefix: lastPrefix})
		if err != nil {
			t.Fatalf("resume at prefix %d: %v", lastPrefix, err)
		}
		got := 0
	drain:
		for lastPrefix < rows {
			select {
			case ev, ok := <-rs.Events():
				if !ok || ev.Event == EventEvicted {
					break drain
				}
				if ev.Prefix != lastPrefix+1 {
					t.Fatalf("gap inside page %d: prefix %d after %d", pages, ev.Prefix, lastPrefix)
				}
				lastPrefix = ev.Prefix
				got++
			case <-time.After(15 * time.Second):
				t.Fatalf("page %d stalled at prefix %d/%d after %d events", pages, lastPrefix, rows, got)
			}
		}
		rcl.Close()
	}
	if pages < 2 {
		t.Fatalf("backlog of %d rows fit one page; eviction pagination untested", rows)
	}
	t.Logf("caught up %d rows in %d pages", rows, pages)
}
