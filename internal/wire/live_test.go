package wire

import (
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/score"
)

// startLiveServer serves an empty monitored live dataset next to a batch one.
func startLiveServer(tb testing.TB) (*Server, *core.LiveEngine, *Client) {
	tb.Helper()
	srv := NewServer(func(string, ...interface{}) {})
	ds := testDataset(tb, 100, 3)
	if err := srv.Add("batch", ds, nil, core.Options{}); err != nil {
		tb.Fatal(err)
	}
	le, err := srv.AddLive("stream", 2, []string{"points", "assists"}, core.Options{}, core.LiveOptions{
		MonitorK: 2, MonitorTau: 10, MonitorScorer: score.MustLinear(1, 1), TrackAhead: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go srv.Serve(ln)
	tb.Cleanup(func() { srv.Close() })
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { cl.Close() })
	return srv, le, cl
}

// TestLiveAppendAndQuery drives the full wire loop: ingest rows in batches,
// watch monitor decisions come back, and check that queries between appends
// answer exactly like a local batch engine over the same prefix.
func TestLiveAppendAndQuery(t *testing.T) {
	_, le, cl := startLiveServer(t)
	ds := testDataset(t, 60, 9)

	infos, err := cl.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	liveSeen := false
	for _, in := range infos {
		switch in.Name {
		case "stream":
			liveSeen = true
			if !in.Live || in.Len != 0 || in.Dims != 2 {
				t.Fatalf("fresh live dataset info wrong: %+v", in)
			}
		case "batch":
			if in.Live {
				t.Fatal("batch dataset flagged live")
			}
		}
	}
	if !liveSeen {
		t.Fatal("live dataset not listed")
	}

	appended := 0
	for appended < ds.Len() {
		batch := 7
		if appended+batch > ds.Len() {
			batch = ds.Len() - appended
		}
		rows := make([]IngestRow, 0, batch)
		for j := 0; j < batch; j++ {
			rows = append(rows, IngestRow{Time: ds.Time(appended + j), Attrs: ds.Attrs(appended + j)})
		}
		resp, err := cl.Append("stream", rows)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Appended != batch || len(resp.Decisions) != batch {
			t.Fatalf("appended=%d decisions=%d want %d", resp.Appended, len(resp.Decisions), batch)
		}
		appended += batch

		// Query through the wire, compare with a batch engine over the prefix.
		got, _, err := cl.Query(Request{Dataset: "stream", QuerySpec: QuerySpec{K: 3, Tau: 12, Weights: []float64{1, 1}}})
		if err != nil {
			t.Fatal(err)
		}
		prefix := ds.Prefix(appended)
		lo, hi := prefix.Span()
		want, err := core.NewEngine(prefix, core.Options{}).DurableTopK(core.Query{
			K: 3, Tau: 12, Start: lo, End: hi, Scorer: score.MustLinear(1, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Records) {
			t.Fatalf("prefix %d: wire %d records, batch %d", appended, len(got), len(want.Records))
		}
		for i := range got {
			w := want.Records[i]
			if got[i].ID != w.ID || got[i].Time != w.Time || got[i].Score != w.Score {
				t.Fatalf("prefix %d record %d: wire %+v batch %+v", appended, i, got[i], w)
			}
		}
	}
	if le.Len() != ds.Len() {
		t.Fatalf("live engine holds %d records, want %d", le.Len(), ds.Len())
	}

	// The scoring-expression path resolves the registered attribute names.
	if _, _, err := cl.Query(Request{Dataset: "stream", QuerySpec: QuerySpec{K: 1, Tau: 5, Expr: "points + 2*assists"}}); err != nil {
		t.Fatal(err)
	}
}

// TestLiveAppendErrors pins the failure contract: non-live targets reject
// appends, empty batches are invalid, and a mid-batch rejection reports the
// committed prefix.
func TestLiveAppendErrors(t *testing.T) {
	_, le, cl := startLiveServer(t)

	if _, err := cl.Append("batch", []IngestRow{{Time: 1000, Attrs: []float64{1, 2}}}); err == nil ||
		!strings.Contains(err.Error(), "not live") {
		t.Fatalf("append to batch dataset: %v", err)
	}
	if _, err := cl.Append("stream", nil); err == nil {
		t.Fatal("empty append accepted")
	}
	if _, err := cl.Append("nope", []IngestRow{{Time: 1, Attrs: []float64{1, 2}}}); err == nil {
		t.Fatal("unknown dataset accepted")
	}

	// Rows 1 and 2 commit; row 3 goes back in time and must reject with the
	// committed count intact.
	resp, err := cl.Append("stream", []IngestRow{
		{Time: 5, Attrs: []float64{1, 2}},
		{Time: 6, Attrs: []float64{3, 4}},
		{Time: 6, Attrs: []float64{5, 6}},
	})
	if err == nil {
		t.Fatal("non-increasing time accepted")
	}
	if resp == nil || resp.Appended != 2 {
		t.Fatalf("partial append response %+v, want Appended=2", resp)
	}
	if le.Len() != 2 {
		t.Fatalf("live engine holds %d records, want 2", le.Len())
	}

	// Wrong dimensionality, first row: nothing commits.
	resp, err = cl.Append("stream", []IngestRow{{Time: 9, Attrs: []float64{1}}})
	if err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if resp.Appended != 0 || le.Len() != 2 {
		t.Fatalf("dim-mismatch append committed rows: %+v len=%d", resp, le.Len())
	}
}

// TestIngestLock checks that wire appends are rejected while a server-side
// ingest stream owns the dataset, and flow again once it is released.
func TestIngestLock(t *testing.T) {
	srv, le, cl := startLiveServer(t)
	if err := srv.SetIngesting("stream", true); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Append("stream", []IngestRow{{Time: 1, Attrs: []float64{1, 2}}}); err == nil ||
		!strings.Contains(err.Error(), "ingest stream") {
		t.Fatalf("append during ingest: %v", err)
	}
	if le.Len() != 0 {
		t.Fatal("locked append committed rows")
	}
	// Queries stay available throughout.
	if _, _, err := cl.Query(Request{Dataset: "batch", QuerySpec: QuerySpec{K: 1, Tau: 5, Weights: []float64{1, 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetIngesting("stream", false); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Append("stream", []IngestRow{{Time: 1, Attrs: []float64{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetIngesting("batch", true); err == nil {
		t.Fatal("SetIngesting on a non-live dataset accepted")
	}
	if err := srv.SetIngesting("nope", true); err == nil {
		t.Fatal("SetIngesting on an unknown dataset accepted")
	}
}

// TestLiveConfirmationsOverWire checks the delayed look-ahead verdicts
// surface once windows close.
func TestLiveConfirmationsOverWire(t *testing.T) {
	_, _, cl := startLiveServer(t) // monitored with k=2, tau=10
	var confirms []LiveConfirmation
	for i := 0; i < 30; i++ {
		resp, err := cl.Append("stream", []IngestRow{
			{Time: int64(i + 1), Attrs: []float64{float64(i % 5), 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		confirms = append(confirms, resp.Confirms...)
	}
	// Windows of length 10 over 30 unit-spaced arrivals: the early records'
	// confirmations must have arrived by now, in arrival order.
	if len(confirms) == 0 {
		t.Fatal("no confirmations after 30 unit-gap appends with tau=10")
	}
	ids := make([]int, len(confirms))
	for i, c := range confirms {
		ids[i] = c.ID
		if c.Truncated {
			t.Fatalf("mid-stream confirmation truncated: %+v", c)
		}
	}
	for i := range ids {
		if ids[i] != i {
			t.Fatalf("confirmations out of arrival order: %v", ids)
		}
	}
	if !reflect.DeepEqual(ids[0], 0) {
		t.Fatalf("first confirmation id %d", ids[0])
	}
}

// TestLiveShardedOverWire drives the live+sharded lifecycle through the wire:
// ingest rows into an AddLiveSharded dataset in batches that cross seal
// boundaries, check the Datasets listing reports the shard count, and require
// every interleaved query to answer exactly like a local batch engine over
// the same prefix.
func TestLiveShardedOverWire(t *testing.T) {
	srv := NewServer(func(string, ...interface{}) {})
	lse, err := srv.AddLiveSharded("stream", 2, []string{"points", "assists"},
		core.Options{}, core.LiveOptions{}, core.LiveShardOptions{SealRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	ds := testDataset(t, 70, 9)
	appended := 0
	for appended < ds.Len() {
		batch := 7
		if appended+batch > ds.Len() {
			batch = ds.Len() - appended
		}
		rows := make([]IngestRow, 0, batch)
		for j := 0; j < batch; j++ {
			rows = append(rows, IngestRow{Time: ds.Time(appended + j), Attrs: ds.Attrs(appended + j)})
		}
		resp, err := cl.Append("stream", rows)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Appended != batch {
			t.Fatalf("appended=%d want %d", resp.Appended, batch)
		}
		appended += batch

		got, _, err := cl.Query(Request{Dataset: "stream", QuerySpec: QuerySpec{K: 3, Tau: 12, Weights: []float64{1, 1}}})
		if err != nil {
			t.Fatal(err)
		}
		prefix := ds.Prefix(appended)
		lo, hi := prefix.Span()
		want, err := core.NewEngine(prefix, core.Options{}).DurableTopK(core.Query{
			K: 3, Tau: 12, Start: lo, End: hi, Scorer: score.MustLinear(1, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Records) {
			t.Fatalf("prefix %d: wire %d records, batch %d", appended, len(got), len(want.Records))
		}
		for i := range got {
			w := want.Records[i]
			if got[i].ID != w.ID || got[i].Time != w.Time || got[i].Score != w.Score {
				t.Fatalf("prefix %d record %d: wire %+v batch %+v", appended, i, got[i], w)
			}
		}
	}
	if lse.Seals() != 4 { // 70 rows / 16 per seal
		t.Fatalf("seals=%d want 4", lse.Seals())
	}

	infos, err := cl.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range infos {
		if in.Name != "stream" {
			continue
		}
		found = true
		if !in.Live || in.Len != 70 || in.Shards != lse.NumShards() || in.Shards != 5 {
			t.Fatalf("live-sharded dataset info wrong: %+v (engine shards %d)", in, lse.NumShards())
		}
	}
	if !found {
		t.Fatal("live-sharded dataset not listed")
	}

	// The ingest lockout applies to live-sharded datasets too.
	if err := srv.SetIngesting("stream", true); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Append("stream", []IngestRow{{Time: 10000, Attrs: []float64{1, 2}}}); err == nil {
		t.Fatal("append during ingest accepted")
	}
	if err := srv.SetIngesting("stream", false); err != nil {
		t.Fatal(err)
	}
	// Expression scoring resolves the registered attribute names.
	if _, _, err := cl.Query(Request{Dataset: "stream", QuerySpec: QuerySpec{K: 1, Tau: 5, Expr: "points + 2*assists"}}); err != nil {
		t.Fatal(err)
	}
}
