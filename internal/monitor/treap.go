package monitor

// streamKey orders stream records by (score, seq): seq is the unique
// arrival index, so keys never collide and equal scores stay distinct.
type streamKey struct {
	score float64
	seq   uint64
}

func keyLess(a, b streamKey) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.seq < b.seq
}

// treap is an order-statistic treap over streamKeys with a lazily
// propagated integer "hit counter" per node. The trailing look-back window
// uses sizes and countGreater; the look-ahead pending set additionally uses
// addBelow/valueOf to accumulate how many later arrivals out-scored each
// pending record without touching them individually.
type treap struct {
	root *tnode
	rng  uint64
}

type tnode struct {
	key  streamKey
	prio uint64
	size int
	val  int // hit counter (excluding pending lazy above this node)
	lazy int // pending addition for the whole subtree
	l, r *tnode
}

func tsize(n *tnode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *tnode) resize() { n.size = 1 + tsize(n.l) + tsize(n.r) }

// push propagates the lazy addition one level down.
func (n *tnode) push() {
	if n.lazy == 0 {
		return
	}
	if n.l != nil {
		n.l.val += n.lazy
		n.l.lazy += n.lazy
	}
	if n.r != nil {
		n.r.val += n.lazy
		n.r.lazy += n.lazy
	}
	n.lazy = 0
}

// next is a SplitMix64 step; deterministic priorities keep runs
// reproducible.
func (t *treap) next() uint64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (t *treap) len() int { return tsize(t.root) }

// split divides n into keys < key and keys >= key.
func split(n *tnode, key streamKey) (lo, hi *tnode) {
	if n == nil {
		return nil, nil
	}
	n.push()
	if keyLess(n.key, key) {
		l, r := split(n.r, key)
		n.r = l
		n.resize()
		return n, r
	}
	l, r := split(n.l, key)
	n.l = r
	n.resize()
	return l, n
}

// merge joins lo and hi; every key in lo precedes every key in hi.
func merge(lo, hi *tnode) *tnode {
	switch {
	case lo == nil:
		return hi
	case hi == nil:
		return lo
	}
	if lo.prio > hi.prio {
		lo.push()
		lo.r = merge(lo.r, hi)
		lo.resize()
		return lo
	}
	hi.push()
	hi.l = merge(lo, hi.l)
	hi.resize()
	return hi
}

// insert adds key with a zero counter.
func (t *treap) insert(key streamKey) {
	lo, hi := split(t.root, key)
	n := &tnode{key: key, prio: t.next(), size: 1}
	t.root = merge(merge(lo, n), hi)
}

// remove deletes key and returns its accumulated counter value.
func (t *treap) remove(key streamKey) (val int, ok bool) {
	var walk func(n *tnode) *tnode
	walk = func(n *tnode) *tnode {
		if n == nil {
			return nil
		}
		n.push()
		switch {
		case key == n.key:
			val, ok = n.val, true
			return merge(n.l, n.r)
		case keyLess(key, n.key):
			n.l = walk(n.l)
		default:
			n.r = walk(n.r)
		}
		n.resize()
		return n
	}
	t.root = walk(t.root)
	return val, ok
}

// countGreaterScore returns how many keys have a score strictly above s.
func (t *treap) countGreaterScore(s float64) int {
	total := 0
	n := t.root
	for n != nil {
		if n.key.score > s {
			total += tsize(n.r) + 1
			n = n.l
		} else {
			n = n.r
		}
	}
	return total
}

// addBelowScore adds delta to the counter of every key with score strictly
// below s.
func (t *treap) addBelowScore(s float64, delta int) {
	// Split at the smallest possible key of score s: everything below has
	// score < s.
	lo, hi := split(t.root, streamKey{score: s, seq: 0})
	if lo != nil {
		lo.val += delta
		lo.lazy += delta
	}
	t.root = merge(lo, hi)
}

// kthLargest returns the key ranked rank (1 = highest score) and its
// counter.
func (t *treap) kthLargest(rank int) (streamKey, bool) {
	n := t.root
	if rank < 1 || rank > tsize(n) {
		return streamKey{}, false
	}
	for {
		n.push()
		right := tsize(n.r)
		switch {
		case rank <= right:
			n = n.r
		case rank == right+1:
			return n.key, true
		default:
			rank -= right + 1
			n = n.l
		}
	}
}
