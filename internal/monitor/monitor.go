// Package monitor decides durability online, over a live stream of
// instant-stamped records — the continuous counterpart of the offline
// engine, in the streaming setting of Mouratidis et al. [11] that the
// paper's §II and §VII discuss.
//
// Two symmetric questions are answered per arrival, both in O(log w)
// amortized time for a trailing window of w records:
//
//   - Look-back (instant): is the new record in the top-k of the tau-length
//     window ending at its own arrival? This is decidable the moment the
//     record arrives, because its window is already complete — the paper's
//     "best in the past tau" claim.
//   - Look-ahead (delayed): once a record's forward window [p.t, p.t+tau]
//     closes, was it beaten by fewer than k later arrivals? This is the
//     "has yet to be broken" claim of the paper's opening example,
//     confirmed exactly tau ticks after the fact or refuted implicitly by
//     the confirmation's Durable flag.
//
// Ties follow the paper's definition: only strictly higher scores count
// against a record. Timestamps must be strictly increasing.
package monitor

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/score"
)

// satAdd returns a+b saturated at math.MaxInt64; b must be >= 0. Forward
// windows [p.t, p.t+tau] with a huge tau must never wrap negative, which
// would confirm candidates prematurely (and mislabel Truncated in Finish).
func satAdd(a, b int64) int64 {
	if s := a + b; s >= a {
		return s
	}
	return math.MaxInt64
}

// satSub returns a-b saturated at math.MinInt64; b must be >= 0. The
// trailing-window cut t-tau must never wrap positive, which would evict the
// whole window.
func satSub(a, b int64) int64 {
	if s := a - b; s <= a {
		return s
	}
	return math.MinInt64
}

// Decision is the instant look-back verdict for one arrival.
type Decision struct {
	ID      int   // arrival index, 0-based
	Time    int64 // arrival time
	Durable bool  // in the top-k of [t-tau, t]
	Rank    int   // 1 + number of strictly higher scores in the window
	Window  int   // records in [t-tau, t] including this one
}

// Confirmation is the delayed look-ahead verdict for a past arrival,
// emitted once its forward window closes (or the stream is finalized).
type Confirmation struct {
	ID      int   // arrival index of the confirmed record
	Time    int64 // its arrival time
	Durable bool  // beaten by fewer than k arrivals in (t, t+tau]
	Beaten  int   // number of strictly higher scores that arrived in time
	// Truncated marks confirmations forced by Finish before the window
	// closed naturally; Durable then refers to the observed prefix only.
	Truncated bool
}

// Options configures a Monitor.
type Options struct {
	// TrackAhead also maintains the delayed look-ahead confirmations.
	// Without it Observe never returns confirmations and uses one less
	// structure.
	TrackAhead bool
}

// Monitor ingests a time-ordered stream and reports durable top-k records.
// Not safe for concurrent use.
type Monitor struct {
	k    int
	tau  int64
	s    score.Scorer
	opts Options

	seq      uint64
	lastTime int64
	started  bool

	// Trailing look-back window: multiset of scores within [t-tau, t].
	win   treap
	queue []winEntry // FIFO by arrival time

	// Pending look-ahead candidates with lazily counted defeats.
	ahead   treap
	pending []aheadEntry // FIFO by arrival time
}

type winEntry struct {
	time int64
	key  streamKey
}

type aheadEntry struct {
	id   int
	time int64
	key  streamKey
}

// New returns a monitor for top-k durability over tau-length windows under
// the scoring function s.
func New(k int, tau int64, s score.Scorer, opts Options) (*Monitor, error) {
	if k < 1 {
		return nil, errors.New("monitor: k must be >= 1")
	}
	if tau < 0 {
		return nil, errors.New("monitor: tau must be >= 0")
	}
	if s == nil {
		return nil, errors.New("monitor: scorer must not be nil")
	}
	return &Monitor{k: k, tau: tau, s: s, opts: opts}, nil
}

// K returns the top-k parameter.
func (m *Monitor) K() int { return m.k }

// Tau returns the window length.
func (m *Monitor) Tau() int64 { return m.tau }

// Len returns the number of records currently inside the trailing window.
func (m *Monitor) Len() int { return m.win.len() }

// Pending returns the number of look-ahead candidates awaiting
// confirmation.
func (m *Monitor) Pending() int { return len(m.pending) }

// Observe ingests one record. It returns the instant look-back decision for
// this record and any look-ahead confirmations that became due strictly
// before t (windows [p.t, p.t+tau] with p.t+tau < t are complete, since no
// further arrival can fall inside them).
func (m *Monitor) Observe(t int64, attrs []float64) (Decision, []Confirmation, error) {
	if d := m.s.Dims(); len(attrs) != d {
		return Decision{}, nil, fmt.Errorf("monitor: got %d attrs, want %d", len(attrs), d)
	}
	return m.ObserveScored(t, m.s.Score(attrs))
}

// ObserveScored is Observe with the record's score already computed. It lets
// a caller maintaining many monitors under the same canonical scorer (the
// subscription registry) score each arrival once and fan the value out.
func (m *Monitor) ObserveScored(t int64, sc float64) (Decision, []Confirmation, error) {
	if m.started && t <= m.lastTime {
		return Decision{}, nil, fmt.Errorf("monitor: time %d not after %d", t, m.lastTime)
	}
	m.started = true
	m.lastTime = t

	confirms := m.confirmDue(t)

	// Count this arrival against every pending candidate it out-scores;
	// their windows all contain t (pending times are within the last tau).
	if m.opts.TrackAhead {
		m.ahead.addBelowScore(sc, 1)
	}

	// Evict trailing records older than t - tau, then decide instantly.
	cut := satSub(t, m.tau)
	for len(m.queue) > 0 && m.queue[0].time < cut {
		m.win.remove(m.queue[0].key)
		m.queue = m.queue[1:]
	}
	higher := m.win.countGreaterScore(sc)
	id := int(m.seq)
	dec := Decision{
		ID:      id,
		Time:    t,
		Durable: higher < m.k,
		Rank:    higher + 1,
		Window:  m.win.len() + 1,
	}

	key := streamKey{score: sc, seq: m.seq}
	m.seq++
	m.win.insert(key)
	m.queue = append(m.queue, winEntry{time: t, key: key})
	if m.opts.TrackAhead {
		m.ahead.insert(key)
		m.pending = append(m.pending, aheadEntry{id: id, time: t, key: key})
	}
	return dec, confirms, nil
}

// confirmDue pops pending candidates whose forward windows closed before
// now.
func (m *Monitor) confirmDue(now int64) []Confirmation {
	if !m.opts.TrackAhead {
		return nil
	}
	var out []Confirmation
	for len(m.pending) > 0 && satAdd(m.pending[0].time, m.tau) < now {
		p := m.pending[0]
		m.pending = m.pending[1:]
		beaten, ok := m.ahead.remove(p.key)
		if !ok {
			beaten = 0 // unreachable; defensive
		}
		out = append(out, Confirmation{
			ID: p.id, Time: p.time,
			Durable: beaten < m.k, Beaten: beaten,
		})
	}
	return out
}

// Finish confirms every remaining look-ahead candidate at end of stream.
// Candidates whose window extends past the last observed arrival are marked
// Truncated: nothing observed refuted them, but the window was cut short.
// Observe may continue afterwards; confirmations then restart from later
// arrivals.
func (m *Monitor) Finish() []Confirmation {
	if !m.opts.TrackAhead {
		return nil
	}
	var out []Confirmation
	for _, p := range m.pending {
		beaten, _ := m.ahead.remove(p.key)
		out = append(out, Confirmation{
			ID: p.id, Time: p.time,
			Durable:   beaten < m.k,
			Beaten:    beaten,
			Truncated: satAdd(p.time, m.tau) > m.lastTime,
		})
	}
	m.pending = nil
	return out
}

// TopK reports the ids currently in the trailing window's top-k, best
// first — the continuously monitored answer of [11].
func (m *Monitor) TopK() []int {
	n := m.win.len()
	if n > m.k {
		n = m.k
	}
	out := make([]int, 0, n)
	for r := 1; r <= n; r++ {
		key, ok := m.win.kthLargest(r)
		if !ok {
			break
		}
		out = append(out, int(key.seq))
	}
	return out
}
