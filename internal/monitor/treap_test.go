package monitor

import "testing"

// TestTreapRemoveMissing covers the defensive branch.
func TestTreapRemoveMissing(t *testing.T) {
	var tr treap
	tr.insert(streamKey{score: 1, seq: 1})
	if _, ok := tr.remove(streamKey{score: 2, seq: 2}); ok {
		t.Fatal("removed a missing key")
	}
	if v, ok := tr.remove(streamKey{score: 1, seq: 1}); !ok || v != 0 {
		t.Fatalf("remove = %d, %v", v, ok)
	}
	if tr.len() != 0 {
		t.Fatal("treap not empty")
	}
}

// TestTreapLazyCounters exercises addBelowScore + remove accounting
// directly.
func TestTreapLazyCounters(t *testing.T) {
	var tr treap
	keys := []streamKey{{1, 0}, {3, 1}, {5, 2}, {3, 3}}
	for _, k := range keys {
		tr.insert(k)
	}
	tr.addBelowScore(4, 1)  // hits scores 1, 3, 3
	tr.addBelowScore(3, 1)  // hits score 1 only (strictly below)
	tr.addBelowScore(10, 1) // hits everything
	wants := map[streamKey]int{
		{1, 0}: 3, {3, 1}: 2, {5, 2}: 1, {3, 3}: 2,
	}
	for k, want := range wants {
		if got, ok := tr.remove(k); !ok || got != want {
			t.Errorf("counter of %v = %d (%v), want %d", k, got, ok, want)
		}
	}
}
