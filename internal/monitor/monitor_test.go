// Package monitor_test verifies the monitor from outside (it cross-checks
// against package core, which itself imports monitor for the live engine).
package monitor_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/monitor"
	"repro/internal/score"
)

// stream is a reusable random stream: strictly increasing times, integer
// scores from [0, spread) to exercise ties.
func stream(rng *rand.Rand, n, spread int) ([]int64, [][]float64) {
	times := make([]int64, n)
	attrs := make([][]float64, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		t += int64(1 + rng.Intn(3))
		times[i] = t
		attrs[i] = []float64{float64(rng.Intn(spread))}
	}
	return times, attrs
}

func mustMonitor(t testing.TB, k int, tau int64, opts monitor.Options) *monitor.Monitor {
	t.Helper()
	m, err := monitor.New(k, tau, score.MustLinear(1), opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestLookBackMatchesOracle: the instant decisions must equal the offline
// engine's look-back answer over the whole stream.
func TestLookBackMatchesOracle(t *testing.T) {
	for _, spread := range []int{500, 7, 1} {
		rng := rand.New(rand.NewSource(int64(spread)))
		times, attrs := stream(rng, 400, spread)
		ds, err := data.New(times, attrs)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3} {
			const tau = 37
			m := mustMonitor(t, k, tau, monitor.Options{})
			var live []int
			for i := range times {
				dec, confirms, err := m.Observe(times[i], attrs[i])
				if err != nil {
					t.Fatal(err)
				}
				if len(confirms) != 0 {
					t.Fatal("confirmations without TrackAhead")
				}
				if dec.ID != i || dec.Time != times[i] {
					t.Fatalf("decision identity wrong: %+v", dec)
				}
				if dec.Durable {
					live = append(live, i)
				}
				if dec.Durable != (dec.Rank <= k) {
					t.Fatalf("rank %d inconsistent with durable=%v (k=%d)", dec.Rank, dec.Durable, k)
				}
			}
			lo, hi := ds.Span()
			want := core.BruteForce(ds, score.MustLinear(1), k, tau, lo, hi, core.LookBack)
			if !reflect.DeepEqual(live, want) {
				t.Fatalf("spread=%d k=%d: live %v, oracle %v", spread, k, live, want)
			}
		}
	}
}

// TestLookAheadMatchesOracle: delayed confirmations (plus Finish) must equal
// the offline look-ahead answer, with truncation exactly on the suffix
// whose windows overrun the stream.
func TestLookAheadMatchesOracle(t *testing.T) {
	for _, spread := range []int{500, 5} {
		rng := rand.New(rand.NewSource(int64(100 + spread)))
		times, attrs := stream(rng, 400, spread)
		ds, err := data.New(times, attrs)
		if err != nil {
			t.Fatal(err)
		}
		const k, tau = 2, 41
		m := mustMonitor(t, k, tau, monitor.Options{TrackAhead: true})
		var confirmed []monitor.Confirmation
		for i := range times {
			_, confirms, err := m.Observe(times[i], attrs[i])
			if err != nil {
				t.Fatal(err)
			}
			confirmed = append(confirmed, confirms...)
		}
		confirmed = append(confirmed, m.Finish()...)
		if len(confirmed) != len(times) {
			t.Fatalf("confirmed %d of %d records", len(confirmed), len(times))
		}
		// Confirmations arrive in arrival order.
		var durable []int
		for i, c := range confirmed {
			if c.ID != i {
				t.Fatalf("confirmation %d out of order: %+v", i, c)
			}
			if c.Durable {
				durable = append(durable, c.ID)
			}
			wantTrunc := c.Time+tau > times[len(times)-1]
			if c.Truncated != wantTrunc {
				t.Fatalf("record %d truncated=%v, want %v", c.ID, c.Truncated, wantTrunc)
			}
		}
		lo, hi := ds.Span()
		want := core.BruteForce(ds, score.MustLinear(1), k, tau, lo, hi, core.LookAhead)
		if !reflect.DeepEqual(durable, want) {
			t.Fatalf("spread=%d: confirmations %v, oracle %v", spread, durable, want)
		}
	}
}

// TestQuickStreamAgainstOracle drives both directions through testing/quick.
func TestQuickStreamAgainstOracle(t *testing.T) {
	prop := func(seed int64, kRaw, tauRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(120)
		spread := 1 + rng.Intn(40)
		times, attrs := stream(rng, n, spread)
		ds, err := data.New(times, attrs)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + int(kRaw)%5
		tau := int64(tauRaw)%80 + 1
		m, err := monitor.New(k, tau, score.MustLinear(1), monitor.Options{TrackAhead: true})
		if err != nil {
			t.Fatal(err)
		}
		var live []int
		var confirmed []int
		for i := range times {
			dec, confirms, err := m.Observe(times[i], attrs[i])
			if err != nil {
				t.Fatal(err)
			}
			if dec.Durable {
				live = append(live, i)
			}
			for _, c := range confirms {
				if c.Durable {
					confirmed = append(confirmed, c.ID)
				}
			}
		}
		for _, c := range m.Finish() {
			if c.Durable {
				confirmed = append(confirmed, c.ID)
			}
		}
		sort.Ints(confirmed)
		lo, hi := ds.Span()
		s := score.MustLinear(1)
		back := core.BruteForce(ds, s, k, tau, lo, hi, core.LookBack)
		ahead := core.BruteForce(ds, s, k, tau, lo, hi, core.LookAhead)
		return reflect.DeepEqual(live, back) && reflect.DeepEqual(confirmed, ahead)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKTracksWindow(t *testing.T) {
	m := mustMonitor(t, 2, 10, monitor.Options{})
	feed := []struct {
		t int64
		v float64
	}{{1, 5}, {2, 9}, {3, 7}, {4, 9}, {15, 1}}
	for _, f := range feed {
		if _, _, err := m.Observe(f.t, []float64{f.v}); err != nil {
			t.Fatal(err)
		}
	}
	// After t=15, everything before t=5 expired; window = {t=15}.
	if got := m.TopK(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("TopK after expiry = %v, want [4]", got)
	}
	if m.Len() != 1 {
		t.Fatalf("window length %d, want 1", m.Len())
	}
}

func TestTopKOrdering(t *testing.T) {
	m := mustMonitor(t, 3, 100, monitor.Options{})
	vals := []float64{4, 8, 6, 8, 2}
	for i, v := range vals {
		if _, _, err := m.Observe(int64(i+1), []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	// Best-first with later arrivals ranked above equal scores: 8@3, 8@1, 6@2.
	if got := m.TopK(); !reflect.DeepEqual(got, []int{3, 1, 2}) {
		t.Fatalf("TopK = %v, want [3 1 2]", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := monitor.New(0, 1, score.MustLinear(1), monitor.Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := monitor.New(1, -1, score.MustLinear(1), monitor.Options{}); err == nil {
		t.Error("negative tau accepted")
	}
	if _, err := monitor.New(1, 1, nil, monitor.Options{}); err == nil {
		t.Error("nil scorer accepted")
	}
	m := mustMonitor(t, 1, 5, monitor.Options{})
	if _, _, err := m.Observe(3, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Observe(3, []float64{1}); err == nil {
		t.Error("non-increasing time accepted")
	}
	if _, _, err := m.Observe(4, []float64{1, 2}); err == nil {
		t.Error("wrong dimensionality accepted")
	}
}

func TestTauZero(t *testing.T) {
	m := mustMonitor(t, 1, 0, monitor.Options{TrackAhead: true})
	var durable int
	var confirms []monitor.Confirmation
	for i := 1; i <= 5; i++ {
		dec, cs, err := m.Observe(int64(i), []float64{float64(i % 2)})
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Durable || dec.Window != 1 {
			t.Fatalf("tau=0 decision %+v; every record should top its own point window", dec)
		}
		durable++
		confirms = append(confirms, cs...)
	}
	confirms = append(confirms, m.Finish()...)
	for _, c := range confirms {
		if !c.Durable || c.Beaten != 0 {
			t.Fatalf("tau=0 confirmation %+v; point windows cannot be beaten", c)
		}
	}
	if durable != 5 || len(confirms) != 5 {
		t.Fatalf("durable=%d confirms=%d, want 5 and 5", durable, len(confirms))
	}
}

func TestTiesDoNotBeat(t *testing.T) {
	m := mustMonitor(t, 1, 100, monitor.Options{TrackAhead: true})
	for i := 1; i <= 4; i++ {
		dec, _, err := m.Observe(int64(i), []float64{42}) // all equal
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Durable || dec.Rank != 1 {
			t.Fatalf("tied record %d not durable: %+v", i, dec)
		}
	}
	for _, c := range m.Finish() {
		if !c.Durable || c.Beaten != 0 {
			t.Fatalf("tied confirmation %+v", c)
		}
	}
}

func TestFinishThenContinue(t *testing.T) {
	m := mustMonitor(t, 1, 3, monitor.Options{TrackAhead: true})
	if _, _, err := m.Observe(1, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if got := m.Finish(); len(got) != 1 || !got[0].Truncated {
		t.Fatalf("Finish = %+v, want one truncated confirmation", got)
	}
	if m.Pending() != 0 {
		t.Fatal("pending not drained")
	}
	// The stream may continue; new records confirm independently.
	if _, _, err := m.Observe(2, []float64{9}); err != nil {
		t.Fatal(err)
	}
	if got := m.Finish(); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("second Finish = %+v", got)
	}
}

// TestFinishThenObserveNoReemission drives tie-heavy schedules with Finish
// calls interleaved mid-stream and asserts no record is ever confirmed
// twice and every record is confirmed exactly once by the end. The
// subscription registry calls Finish on live monitors, so the
// Finish-then-Observe path must stay single-emission under every tie
// schedule.
func TestFinishThenObserveNoReemission(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 20 + rng.Intn(60)
		spread := 1 + rng.Intn(4) // heavy ties
		times, attrs := stream(rng, n, spread)
		k := 1 + rng.Intn(3)
		tau := int64(1 + rng.Intn(25))
		m, err := monitor.New(k, tau, score.MustLinear(1), monitor.Options{TrackAhead: true})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		record := func(cs []monitor.Confirmation) {
			for _, c := range cs {
				if seen[c.ID] {
					t.Fatalf("seed %d: record %d confirmed twice", seed, c.ID)
				}
				seen[c.ID] = true
			}
		}
		for i := range times {
			_, cs, err := m.Observe(times[i], attrs[i])
			if err != nil {
				t.Fatal(err)
			}
			record(cs)
			if rng.Intn(7) == 0 {
				record(m.Finish())
			}
		}
		record(m.Finish())
		if len(seen) != n {
			t.Fatalf("seed %d: confirmed %d of %d records", seed, len(seen), n)
		}
	}
}

// TestHugeTauNoOverflow: a tau near MaxInt64 must behave like an unbounded
// window — nothing evicts, nothing confirms early, and Finish marks
// everything truncated — rather than wrapping p.t+tau negative.
func TestHugeTauNoOverflow(t *testing.T) {
	const hugeTau = int64(1)<<62 + 12345
	m, err := monitor.New(1, hugeTau, score.MustLinear(1), monitor.Options{TrackAhead: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{3, 9, 5, 9, 1}
	for i, v := range vals {
		dec, cs, err := m.Observe(int64(i+1), []float64{v})
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) != 0 {
			t.Fatalf("record %d confirmed early under huge tau: %+v", i, cs)
		}
		// Nothing may have been evicted from the trailing window.
		if dec.Window != i+1 {
			t.Fatalf("record %d window %d, want %d (eviction under huge tau)", i, dec.Window, i+1)
		}
	}
	for _, c := range m.Finish() {
		if !c.Truncated {
			t.Fatalf("confirmation %+v not truncated under huge tau", c)
		}
	}
	if m.Len() != len(vals) {
		t.Fatalf("window len %d, want %d", m.Len(), len(vals))
	}
}

func TestAccessors(t *testing.T) {
	m := mustMonitor(t, 3, 17, monitor.Options{TrackAhead: true})
	if m.K() != 3 || m.Tau() != 17 || m.Len() != 0 || m.Pending() != 0 {
		t.Fatalf("fresh monitor accessors wrong: k=%d tau=%d len=%d pending=%d",
			m.K(), m.Tau(), m.Len(), m.Pending())
	}
	if _, _, err := m.Observe(1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || m.Pending() != 1 {
		t.Fatalf("after one observe: len=%d pending=%d", m.Len(), m.Pending())
	}
}

func BenchmarkObserve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, err := monitor.New(10, 1024, score.MustLinear(1), monitor.Options{TrackAhead: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Observe(int64(i+1), []float64{rng.Float64()}); err != nil {
			b.Fatal(err)
		}
	}
}
