// Package rmq provides an alternative range top-k building block for
// workloads that rank by a fixed scoring function: a sparse-table range
// maximum query structure with O(n log n) construction, O(1) range argmax,
// and O(k log k) range top-k by recursive range splitting.
//
// The paper treats the top-k building block as a pluggable black box (§II);
// this package demonstrates the plug-in point of package core with a
// structure that beats the general tree index when the scorer is known up
// front (e.g. repeated durable queries over one ranking, varying only k, tau
// and I).
//
// Ties follow the library-wide contract: equal values rank by recency
// (larger index first).
package rmq

import (
	"math/bits"
)

// Table answers range-argmax queries over a fixed array of values.
type Table struct {
	values []float64
	// sparse[j][i] is the argmax of values[i : i+2^j].
	sparse [][]int32
}

// New builds the sparse table in O(n log n) time and space.
func New(values []float64) *Table {
	n := len(values)
	t := &Table{values: values}
	if n == 0 {
		return t
	}
	levels := bits.Len(uint(n))
	t.sparse = make([][]int32, levels)
	base := make([]int32, n)
	for i := range base {
		base[i] = int32(i)
	}
	t.sparse[0] = base
	for j := 1; j < levels; j++ {
		width := 1 << j
		prev := t.sparse[j-1]
		row := make([]int32, n-width+1)
		half := width / 2
		for i := range row {
			row[i] = t.pick(prev[i], prev[i+half])
		}
		t.sparse[j] = row
	}
	return t
}

// pick returns the better of two candidate indices: higher value, or equal
// value with larger index (recency).
func (t *Table) pick(a, b int32) int32 {
	va, vb := t.values[a], t.values[b]
	if va > vb {
		return a
	}
	if vb > va {
		return b
	}
	if a > b {
		return a
	}
	return b
}

// Len returns the number of indexed values.
func (t *Table) Len() int { return len(t.values) }

// ArgMax returns the index of the maximum value in the inclusive index
// range [lo, hi] (ties broken toward hi). lo <= hi must hold.
func (t *Table) ArgMax(lo, hi int) int {
	j := bits.Len(uint(hi-lo+1)) - 1
	return int(t.pick(t.sparse[j][lo], t.sparse[j][hi-(1<<j)+1]))
}

// Item is one range top-k result.
type Item struct {
	Index int
	Value float64
}

// rangeCand is a heap entry: a sub-range with its precomputed argmax.
type rangeCand struct {
	lo, hi int
	argmax int
	value  float64
}

func (t *Table) cand(lo, hi int) (rangeCand, bool) {
	if lo > hi {
		return rangeCand{}, false
	}
	am := t.ArgMax(lo, hi)
	return rangeCand{lo: lo, hi: hi, argmax: am, value: t.values[am]}, true
}

func candBefore(a, b rangeCand) bool {
	if a.value != b.value {
		return a.value > b.value
	}
	return a.argmax > b.argmax
}

// TopK returns up to k items of the inclusive index range [lo, hi], ordered
// by (value desc, index desc). Runs in O(k log k) after the O(1) initial
// argmax: each emitted maximum splits its range into two sub-ranges pushed
// onto a candidate heap.
func (t *Table) TopK(lo, hi, k int) []Item {
	if k <= 0 || lo > hi || len(t.values) == 0 {
		return nil
	}
	if lo < 0 {
		lo = 0
	}
	if hi >= len(t.values) {
		hi = len(t.values) - 1
	}
	var heap []rangeCand
	push := func(c rangeCand, ok bool) {
		if !ok {
			return
		}
		heap = append(heap, c)
		i := len(heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !candBefore(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	pop := func() rangeCand {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i, n := 0, len(heap)
		for {
			l, r, best := 2*i+1, 2*i+2, i
			if l < n && candBefore(heap[l], heap[best]) {
				best = l
			}
			if r < n && candBefore(heap[r], heap[best]) {
				best = r
			}
			if best == i {
				break
			}
			heap[i], heap[best] = heap[best], heap[i]
			i = best
		}
		return top
	}

	push(t.cand(lo, hi))
	out := make([]Item, 0, k)
	for len(heap) > 0 && len(out) < k {
		c := pop()
		out = append(out, Item{Index: c.argmax, Value: c.value})
		push(t.cand(c.lo, c.argmax-1))
		push(t.cand(c.argmax+1, c.hi))
	}
	return out
}
