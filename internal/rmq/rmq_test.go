package rmq

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/score"
)

func TestArgMaxMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(400)
		values := make([]float64, n)
		for i := range values {
			values[i] = float64(rng.Intn(12)) // small domain: plenty of ties
		}
		tbl := New(values)
		for q := 0; q < 30; q++ {
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo)
			got := tbl.ArgMax(lo, hi)
			// Naive: maximum value, tie toward the largest index.
			want := lo
			for i := lo + 1; i <= hi; i++ {
				if values[i] >= values[want] {
					want = i
				}
			}
			if got != want {
				t.Fatalf("trial %d: ArgMax(%d,%d)=%d want %d (values %v)", trial, lo, hi, got, want, values[lo:hi+1])
			}
		}
	}
}

func TestTopKMatchesSort(t *testing.T) {
	f := func(raw []uint8, kRaw uint8, loRaw, spanRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]float64, len(raw))
		for i, v := range raw {
			values[i] = float64(v % 8)
		}
		tbl := New(values)
		lo := int(loRaw) % len(values)
		hi := lo + int(spanRaw)%(len(values)-lo)
		k := int(kRaw%12) + 1
		got := tbl.TopK(lo, hi, k)

		type pair struct {
			idx int
			v   float64
		}
		var all []pair
		for i := lo; i <= hi; i++ {
			all = append(all, pair{i, values[i]})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].v != all[j].v {
				return all[i].v > all[j].v
			}
			return all[i].idx > all[j].idx
		})
		if len(all) > k {
			all = all[:k]
		}
		if len(got) != len(all) {
			return false
		}
		for i := range got {
			if got[i].Index != all[i].idx || got[i].Value != all[i].v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	tbl := New([]float64{3, 1, 2})
	if items := tbl.TopK(0, 2, 0); items != nil {
		t.Fatal("k=0 must return nil")
	}
	if items := tbl.TopK(2, 0, 3); items != nil {
		t.Fatal("inverted range must return nil")
	}
	if items := tbl.TopK(-5, 99, 10); len(items) != 3 {
		t.Fatalf("clamped range returned %d items", len(items))
	}
	empty := New(nil)
	if empty.Len() != 0 || empty.TopK(0, 0, 1) != nil {
		t.Fatal("empty table must answer nil")
	}
}

func randDS(rng *rand.Rand, n int) *data.Dataset {
	b := data.NewBuilder(1, n)
	tt := int64(0)
	for i := 0; i < n; i++ {
		tt += int64(1 + rng.Intn(3))
		if err := b.Append(tt, []float64{float64(rng.Intn(20))}); err != nil {
			panic(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		panic(err)
	}
	return ds
}

func TestBlockMatchesTreeIndexEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 10; trial++ {
		ds := randDS(rng, 100+rng.Intn(400))
		s, err := score.NewSingle(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		// The engine with the RMQ block must agree with the brute-force
		// oracle for every algorithm and both anchors.
		eng := core.NewEngine(ds, core.Options{
			NewBlock: func(d *data.Dataset) core.Block { return NewBlock(d) },
		})
		lo, hi := ds.Span()
		span := hi - lo
		for q := 0; q < 4; q++ {
			k := 1 + rng.Intn(5)
			tau := rng.Int63n(span + 1)
			anchor := core.LookBack
			if q%2 == 1 {
				anchor = core.LookAhead
			}
			want := core.BruteForce(ds, s, k, tau, lo, hi, anchor)
			for _, alg := range core.Algorithms() {
				res, err := eng.DurableTopK(core.Query{
					K: k, Tau: tau, Start: lo, End: hi,
					Scorer: s, Algorithm: alg, Anchor: anchor,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := res.IDs()
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d alg=%v anchor=%v k=%d tau=%d:\n got %v\nwant %v",
						trial, alg, anchor, k, tau, got, want)
				}
			}
		}
	}
}

func TestBlockCachesPerScorer(t *testing.T) {
	ds := randDS(rand.New(rand.NewSource(139)), 100)
	blk := NewBlock(ds)
	s1, _ := score.NewSingle(0, 1)
	s2 := score.MustLinear(2)
	blk.Query(s1, 3, 0, 1000)
	blk.Query(s1, 5, 0, 1000)
	if blk.CachedTables() != 1 {
		t.Fatalf("tables=%d want 1 (same scorer reused)", blk.CachedTables())
	}
	blk.Query(s2, 3, 0, 1000)
	if blk.CachedTables() != 2 {
		t.Fatalf("tables=%d want 2", blk.CachedTables())
	}
}

func TestBlockWithDurationsUsesQueryRange(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	ds := randDS(rng, 300)
	s, _ := score.NewSingle(0, 1)
	eng := core.NewEngine(ds, core.Options{
		NewBlock: func(d *data.Dataset) core.Block { return NewBlock(d) },
	})
	lo, hi := ds.Span()
	res, err := eng.DurableTopK(core.Query{
		K: 2, Tau: 30, Start: lo, End: hi, Scorer: s, WithDurations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		wantDur, wantFull := core.BruteMaxDuration(ds, s, 2, r.ID, core.LookBack)
		if r.MaxDuration != wantDur || r.FullHistory != wantFull {
			t.Fatalf("record %d: (%d,%v) want (%d,%v)", r.ID, r.MaxDuration, r.FullHistory, wantDur, wantFull)
		}
	}
}

func BenchmarkTableBuild100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 100_000)
	for i := range values {
		values[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(values)
	}
}

func BenchmarkTableTopK100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 100_000)
	for i := range values {
		values[i] = rng.Float64()
	}
	tbl := New(values)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Intn(90_000)
		tbl.TopK(lo, lo+9_999, 10)
	}
}
