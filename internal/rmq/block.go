package rmq

import (
	"sync"

	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/topk"
)

// Block adapts the sparse-table RMQ structure to the durable top-k engine's
// pluggable building-block interface (core.Block). One table is built lazily
// per distinct Scorer instance and cached, so repeated durable queries under
// the same ranking pay the O(n log n) construction once and then answer each
// range top-k probe in O(k log k). Safe for concurrent use.
//
// Reuse the same Scorer value across queries to hit the cache; a fresh
// but equivalent scorer instance builds a fresh table.
type Block struct {
	ds *data.Dataset

	mu     sync.Mutex
	tables map[score.Scorer]*Table
}

// NewBlock returns an RMQ building block over ds.
func NewBlock(ds *data.Dataset) *Block {
	return &Block{ds: ds, tables: make(map[score.Scorer]*Table)}
}

// CachedTables reports how many per-scorer tables have been materialized.
func (b *Block) CachedTables() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.tables)
}

func (b *Block) table(s score.Scorer) *Table {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.tables[s]; ok {
		return t
	}
	values := make([]float64, b.ds.Len())
	for i := range values {
		values[i] = s.Score(b.ds.Attrs(i))
	}
	t := New(values)
	b.tables[s] = t
	return t
}

// QueryRange implements the building-block contract over the half-open
// record index range [lo, hi).
func (b *Block) QueryRange(s score.Scorer, k int, lo, hi int) []topk.Item {
	if k <= 0 || lo >= hi {
		return nil
	}
	if lo < 0 {
		lo = 0
	}
	if hi > b.ds.Len() {
		hi = b.ds.Len()
	}
	items := b.table(s).TopK(lo, hi-1, k)
	out := make([]topk.Item, len(items))
	for i, it := range items {
		out[i] = topk.Item{ID: int32(it.Index), Time: b.ds.Time(it.Index), Score: it.Value}
	}
	return out
}

// Query implements the building-block contract over the closed time window
// [t1, t2].
func (b *Block) Query(s score.Scorer, k int, t1, t2 int64) []topk.Item {
	lo, hi := b.ds.IndexRange(t1, t2)
	return b.QueryRange(s, k, lo, hi)
}
