package rmq

import (
	"sync"

	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/topk"
)

// Block adapts the sparse-table RMQ structure to the durable top-k engine's
// pluggable building-block interface (core.Block). One table is built lazily
// per distinct Scorer instance and cached, so repeated durable queries under
// the same ranking pay the O(n log n) construction once and then answer each
// range top-k probe in O(k log k). Safe for concurrent use.
//
// Reuse the same Scorer value across queries to hit the cache; a fresh
// but equivalent scorer instance builds a fresh table.
type Block struct {
	ds *data.Dataset

	mu     sync.Mutex
	tables map[score.Scorer]*Table
}

// NewBlock returns an RMQ building block over ds.
func NewBlock(ds *data.Dataset) *Block {
	return &Block{ds: ds, tables: make(map[score.Scorer]*Table)}
}

// CachedTables reports how many per-scorer tables have been materialized.
func (b *Block) CachedTables() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.tables)
}

func (b *Block) table(s score.Scorer) *Table {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, ok := b.tables[s]; ok {
		return t
	}
	// Bulk-score the whole dataset in one pass over the contiguous flat
	// attribute array (score.BulkScorer), instead of one dispatched call
	// plus row dereference per record.
	values := make([]float64, b.ds.Len())
	score.ScoreFlatRange(s, values, b.ds.FlatAttrs(), b.ds.Dims(), 0, b.ds.Len())
	t := New(values)
	b.tables[s] = t
	return t
}

// QueryRange implements the building-block contract over the half-open
// record index range [lo, hi).
func (b *Block) QueryRange(s score.Scorer, k int, lo, hi int) []topk.Item {
	if k <= 0 || lo >= hi {
		return nil
	}
	if lo < 0 {
		lo = 0
	}
	if hi > b.ds.Len() {
		hi = b.ds.Len()
	}
	items := b.table(s).TopK(lo, hi-1, k)
	out := make([]topk.Item, len(items))
	for i, it := range items {
		out[i] = topk.Item{ID: int32(it.Index), Time: b.ds.Time(it.Index), Score: it.Value}
	}
	return out
}

// Query implements the building-block contract over the closed time window
// [t1, t2].
func (b *Block) Query(s score.Scorer, k int, t1, t2 int64) []topk.Item {
	lo, hi := b.ds.IndexRange(t1, t2)
	return b.QueryRange(s, k, lo, hi)
}

// QueryRangeInto is QueryRange appending results into dst[:0] (pass nil to
// allocate), matching the engine's scratch-probe capability. The Scratch is
// accepted for interface compatibility; the RMQ walk keeps its own small
// candidate heap.
func (b *Block) QueryRangeInto(s score.Scorer, k int, lo, hi int, _ *topk.Scratch, dst []topk.Item) []topk.Item {
	dst = dst[:0]
	if k <= 0 || lo >= hi {
		return dst
	}
	if lo < 0 {
		lo = 0
	}
	if hi > b.ds.Len() {
		hi = b.ds.Len()
	}
	for _, it := range b.table(s).TopK(lo, hi-1, k) {
		dst = append(dst, topk.Item{ID: int32(it.Index), Time: b.ds.Time(it.Index), Score: it.Value})
	}
	return dst
}

// QueryInto is Query appending results into dst[:0]; see QueryRangeInto.
func (b *Block) QueryInto(s score.Scorer, k int, t1, t2 int64, sc *topk.Scratch, dst []topk.Item) []topk.Item {
	lo, hi := b.ds.IndexRange(t1, t2)
	return b.QueryRangeInto(s, k, lo, hi, sc, dst)
}
