package blocking

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoverTreeBasics(t *testing.T) {
	ct := NewCoverTree(10)
	if got := ct.Min(0, 10); got != 0 {
		t.Fatalf("fresh tree Min = %d, want 0", got)
	}
	ct.Add(2, 5, 1)
	ct.Add(3, 8, 2)
	wants := []int{0, 0, 1, 3, 3, 2, 2, 2, 0, 0}
	for i, want := range wants {
		if got := ct.At(i); got != want {
			t.Errorf("At(%d) = %d, want %d", i, got, want)
		}
	}
	if got := ct.Min(2, 5); got != 1 {
		t.Errorf("Min(2,5) = %d, want 1", got)
	}
	if got := ct.Min(3, 5); got != 3 {
		t.Errorf("Min(3,5) = %d, want 3", got)
	}
	if got := ct.Min(0, 10); got != 0 {
		t.Errorf("Min(0,10) = %d, want 0", got)
	}
}

func TestCoverTreeClipping(t *testing.T) {
	ct := NewCoverTree(4)
	ct.Add(-5, 100, 1) // clipped to [0, 4)
	if got := ct.Min(0, 4); got != 1 {
		t.Fatalf("Min after clipped add = %d, want 1", got)
	}
	if got := ct.Min(2, 2); got != int(coverInf) {
		t.Errorf("empty range Min = %d, want sentinel", got)
	}
	if got := ct.Min(9, 12); got != int(coverInf) {
		t.Errorf("out-of-range Min = %d, want sentinel", got)
	}
	ct.Add(1, 1, 5) // empty add is a no-op
	if got := ct.Min(0, 4); got != 1 {
		t.Errorf("Min after empty add = %d, want 1", got)
	}
}

func TestCoverTreeNegativeDelta(t *testing.T) {
	ct := NewCoverTree(6)
	ct.Add(0, 6, 3)
	ct.Add(2, 4, -1)
	if got := ct.Min(0, 6); got != 2 {
		t.Fatalf("Min = %d, want 2", got)
	}
	if got := ct.At(1); got != 3 {
		t.Fatalf("At(1) = %d, want 3", got)
	}
}

func TestCoverTreeTinySize(t *testing.T) {
	ct := NewCoverTree(0) // clamped to one position
	ct.Add(0, 1, 7)
	if got := ct.At(0); got != 7 {
		t.Fatalf("At(0) = %d, want 7", got)
	}
}

// TestQuickCoverTreeMatchesNaive compares the tree against a plain slice
// under random interleaved adds and min queries.
func TestQuickCoverTreeMatchesNaive(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		ct := NewCoverTree(n)
		naive := make([]int, n)
		for op := 0; op < 120; op++ {
			lo := rng.Intn(n + 2)
			hi := rng.Intn(n + 2)
			if rng.Intn(2) == 0 {
				delta := rng.Intn(5) - 1
				ct.Add(lo, hi, delta)
				for i := lo; i < hi && i < n; i++ {
					if i >= 0 {
						naive[i] += delta
					}
				}
			} else {
				got := ct.Min(lo, hi)
				want := int(coverInf)
				for i := lo; i < hi && i < n; i++ {
					if i >= 0 && naive[i] < want {
						want = naive[i]
					}
				}
				if lo >= hi || lo >= n {
					want = int(coverInf)
				}
				if got != want {
					t.Logf("seed=%d n=%d Min(%d,%d) = %d, want %d", seed, n, lo, hi, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
