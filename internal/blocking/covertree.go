package blocking

// CoverTree maintains blocking-coverage counts over record positions
// 0..n-1, supporting range increments and range-minimum queries in
// O(log n). The score-prioritized algorithms for mid-anchored windows use
// it to decide when an entire sub-interval is fully covered (every record
// position blocked by >= k strictly higher-scoring records) and can be
// abandoned — the general-anchor replacement for Lemma 6's geometric
// argument, which only holds for end-anchored windows.
//
// Positions are record indices, not raw timestamps: coverage only matters
// where a record exists, and indices keep the tree dense. The zero value is
// not usable; construct with NewCoverTree. Not safe for concurrent use.
type CoverTree struct {
	n    int
	min  []int32
	lazy []int32
}

// NewCoverTree returns a tree over positions 0..n-1 with all counts zero.
func NewCoverTree(n int) *CoverTree {
	if n < 1 {
		n = 1
	}
	return &CoverTree{n: n, min: make([]int32, 4*n), lazy: make([]int32, 4*n)}
}

// Len returns the number of positions.
func (t *CoverTree) Len() int { return t.n }

// Add increments the count of every position in the half-open range
// [lo, hi) by delta. Out-of-range parts are clipped; empty ranges are
// no-ops.
func (t *CoverTree) Add(lo, hi int, delta int) {
	if lo < 0 {
		lo = 0
	}
	if hi > t.n {
		hi = t.n
	}
	if lo >= hi || delta == 0 {
		return
	}
	t.add(1, 0, t.n, lo, hi, int32(delta))
}

func (t *CoverTree) add(node, nodeLo, nodeHi, lo, hi int, delta int32) {
	if lo <= nodeLo && nodeHi <= hi {
		t.min[node] += delta
		t.lazy[node] += delta
		return
	}
	mid := (nodeLo + nodeHi) / 2
	if lo < mid {
		t.add(2*node, nodeLo, mid, lo, hi, delta)
	}
	if hi > mid {
		t.add(2*node+1, mid, nodeHi, lo, hi, delta)
	}
	l, r := t.min[2*node], t.min[2*node+1]
	if r < l {
		l = r
	}
	t.min[node] = l + t.lazy[node]
}

// Min returns the minimum count over the half-open range [lo, hi); it
// returns a large sentinel for empty or fully out-of-range inputs (an empty
// range is vacuously covered).
func (t *CoverTree) Min(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > t.n {
		hi = t.n
	}
	if lo >= hi {
		return int(coverInf)
	}
	return int(t.query(1, 0, t.n, lo, hi))
}

const coverInf int32 = 1 << 30

func (t *CoverTree) query(node, nodeLo, nodeHi, lo, hi int) int32 {
	if lo <= nodeLo && nodeHi <= hi {
		return t.min[node]
	}
	mid := (nodeLo + nodeHi) / 2
	best := coverInf
	if lo < mid {
		if v := t.query(2*node, nodeLo, mid, lo, hi); v < best {
			best = v
		}
	}
	if hi > mid {
		if v := t.query(2*node+1, mid, nodeHi, lo, hi); v < best {
			best = v
		}
	}
	return best + t.lazy[node]
}

// At returns the count at one position.
func (t *CoverTree) At(i int) int { return t.Min(i, i+1) }
