package blocking

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveCover counts intervals [l, l+tau] covering t by direct scan.
func naiveCover(lefts []int64, tau, t int64) int {
	n := 0
	for _, l := range lefts {
		if l <= t && t <= l+tau {
			n++
		}
	}
	return n
}

func TestCoverMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		tau := int64(rng.Intn(40))
		s := NewSet(tau)
		var lefts []int64
		for i := 0; i < 200; i++ {
			l := int64(rng.Intn(300) - 50)
			s.Add(l)
			lefts = append(lefts, l)
			if i%10 == 0 {
				probe := int64(rng.Intn(400) - 100)
				if got, want := s.Cover(probe), naiveCover(lefts, tau, probe); got != want {
					t.Fatalf("trial %d: Cover(%d)=%d want %d (tau=%d, %d intervals)",
						trial, probe, got, want, tau, len(lefts))
				}
			}
		}
	}
}

func TestCoverQuick(t *testing.T) {
	f := func(leftsRaw []int16, tauRaw uint8, probeRaw int16) bool {
		tau := int64(tauRaw)
		s := NewSet(tau)
		lefts := make([]int64, len(leftsRaw))
		for i, l := range leftsRaw {
			lefts[i] = int64(l)
			s.Add(int64(l))
		}
		probe := int64(probeRaw)
		return s.Cover(probe) == naiveCover(lefts, tau, probe)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateEndpoints(t *testing.T) {
	s := NewSet(10)
	for i := 0; i < 5; i++ {
		s.Add(100)
	}
	if got := s.Cover(105); got != 5 {
		t.Fatalf("Cover(105)=%d want 5", got)
	}
	if got := s.Cover(111); got != 0 {
		t.Fatalf("Cover(111)=%d want 0", got)
	}
	if s.Len() != 5 {
		t.Fatalf("Len=%d want 5", s.Len())
	}
}

func TestBoundaryInclusive(t *testing.T) {
	s := NewSet(7)
	s.Add(10)
	cases := []struct {
		t    int64
		want int
	}{{9, 0}, {10, 1}, {17, 1}, {18, 0}}
	for _, c := range cases {
		if got := s.Cover(c.t); got != c.want {
			t.Errorf("Cover(%d)=%d want %d", c.t, got, c.want)
		}
	}
}

func TestZeroTau(t *testing.T) {
	s := NewSet(0)
	s.Add(5)
	if s.Cover(5) != 1 || s.Cover(4) != 0 || s.Cover(6) != 0 {
		t.Fatalf("zero-length interval must cover exactly its endpoint")
	}
}

func TestCountRange(t *testing.T) {
	s := NewSet(1)
	for _, l := range []int64{1, 3, 3, 7, 9} {
		s.Add(l)
	}
	if got := s.CountRange(3, 7); got != 3 {
		t.Fatalf("CountRange(3,7)=%d want 3", got)
	}
	if got := s.CountRange(8, 2); got != 0 {
		t.Fatalf("inverted range must count 0, got %d", got)
	}
	if got := s.CountLE(0); got != 0 {
		t.Fatalf("CountLE(0)=%d want 0", got)
	}
	if got := s.CountLE(100); got != 5 {
		t.Fatalf("CountLE(100)=%d want 5", got)
	}
}

func TestBlocked(t *testing.T) {
	s := NewSet(5)
	s.Add(0)
	s.Add(2)
	if !s.Blocked(3, 2) {
		t.Fatal("t=3 covered twice must be blocked at k=2")
	}
	if s.Blocked(3, 3) {
		t.Fatal("t=3 covered twice must not be blocked at k=3")
	}
}

// TestSortedInsertionBalance guards against degenerate treap behaviour on
// sorted input (the common access pattern of the algorithms).
func TestSortedInsertionBalance(t *testing.T) {
	s := NewSet(100)
	for i := int64(0); i < 20000; i++ {
		s.Add(i)
	}
	// Sanity: counts still correct at a few probes.
	for _, probe := range []int64{0, 50, 150, 19999, 20099} {
		want := 0
		for l := int64(0); l < 20000; l++ {
			if l <= probe && probe <= l+100 {
				want++
			}
		}
		if got := s.Cover(probe); got != want {
			t.Fatalf("Cover(%d)=%d want %d", probe, got, want)
		}
	}
}

func TestKthLargestLE(t *testing.T) {
	s := NewSet(0)
	for _, l := range []int64{5, 1, 9, 5, 3} { // sorted multiset: 1 3 5 5 9
		s.Add(l)
	}
	cases := []struct {
		x    int64
		k    int
		want int64
		ok   bool
	}{
		{9, 1, 9, true}, {9, 2, 5, true}, {9, 3, 5, true}, {9, 4, 3, true},
		{9, 5, 1, true}, {9, 6, 0, false},
		{8, 1, 5, true}, {8, 2, 5, true}, {8, 3, 3, true},
		{0, 1, 0, false}, {5, 1, 5, true}, {5, 3, 3, true},
		{100, 0, 0, false},
	}
	for _, c := range cases {
		got, ok := s.KthLargestLE(c.x, c.k)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("KthLargestLE(%d,%d)=(%d,%v) want (%d,%v)", c.x, c.k, got, ok, c.want, c.ok)
		}
	}
}

func TestKthLargestLERandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		s := NewSet(0)
		var keys []int64
		for i := 0; i < 150; i++ {
			l := int64(rng.Intn(60))
			s.Add(l)
			keys = append(keys, l)
		}
		for probe := 0; probe < 30; probe++ {
			x := int64(rng.Intn(80) - 10)
			k := 1 + rng.Intn(8)
			// Oracle: gather keys <= x, sort descending, pick k-th.
			var le []int64
			for _, l := range keys {
				if l <= x {
					le = append(le, l)
				}
			}
			sortDesc(le)
			got, ok := s.KthLargestLE(x, k)
			if k > len(le) {
				if ok {
					t.Fatalf("trial %d: expected !ok for x=%d k=%d", trial, x, k)
				}
				continue
			}
			if !ok || got != le[k-1] {
				t.Fatalf("trial %d: KthLargestLE(%d,%d)=(%d,%v) want %d", trial, x, k, got, ok, le[k-1])
			}
		}
	}
}

func sortDesc(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func BenchmarkAddCover(b *testing.B) {
	s := NewSet(1000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Int63n(1 << 20))
		_ = s.Cover(rng.Int63n(1 << 20))
	}
}
