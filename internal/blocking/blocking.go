// Package blocking implements the blocking mechanism of the score-prioritized
// durable top-k algorithms (paper §IV, Fig. 3).
//
// Every processed high-score record p contributes a blocking interval
// [p.t, p.t+tau]. A candidate record q arriving at time t cannot be
// tau-durable once t is covered by k or more blocking intervals, because
// each covering interval witnesses a record with higher score inside q's
// durability window. Since all intervals share the same length tau, the
// cover count of t equals the number of interval left endpoints in
// [t-tau, t]; the structure therefore maintains a multiset of left endpoints
// in an order-statistic treap with O(log n) expected insert and count.
package blocking

// Set maintains the left endpoints of equal-length blocking intervals and
// answers coverage-count queries. The zero value is not usable; construct
// with NewSet. Not safe for concurrent use.
type Set struct {
	tau  int64
	root *node
	size int // number of intervals added, counting duplicates
	rng  uint64
}

type node struct {
	key         int64 // interval left endpoint
	mult        int   // multiplicity of key
	count       int   // total multiplicity in subtree
	prio        uint64
	left, right *node
}

// NewSet returns an empty blocking set for intervals of length tau >= 0.
func NewSet(tau int64) *Set {
	return &Set{tau: tau, rng: 0x9e3779b97f4a7c15}
}

// Tau returns the interval length.
func (s *Set) Tau() int64 { return s.tau }

// Len returns the number of intervals added, counting duplicates.
func (s *Set) Len() int { return s.size }

// next is a SplitMix64 step used for treap priorities; deterministic so runs
// are reproducible.
func (s *Set) next() uint64 {
	s.rng += 0x9e3779b97f4a7c15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func count(n *node) int {
	if n == nil {
		return 0
	}
	return n.count
}

func (n *node) recount() { n.count = n.mult + count(n.left) + count(n.right) }

// Add inserts the blocking interval [left, left+tau].
func (s *Set) Add(left int64) {
	s.root = s.insert(s.root, left)
	s.size++
}

func (s *Set) insert(n *node, key int64) *node {
	if n == nil {
		return &node{key: key, mult: 1, count: 1, prio: s.next()}
	}
	switch {
	case key == n.key:
		n.mult++
		n.count++
		return n
	case key < n.key:
		n.left = s.insert(n.left, key)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		}
	default:
		n.right = s.insert(n.right, key)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		}
	}
	n.recount()
	return n
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.recount()
	l.recount()
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.recount()
	r.recount()
	return r
}

// CountLE returns the number of intervals whose left endpoint is <= x.
func (s *Set) CountLE(x int64) int {
	n := s.root
	total := 0
	for n != nil {
		if x < n.key {
			n = n.left
		} else {
			total += n.mult + count(n.left)
			n = n.right
		}
	}
	return total
}

// CountRange returns the number of intervals with left endpoint in the
// closed range [a, b]; zero when a > b.
func (s *Set) CountRange(a, b int64) int {
	if a > b {
		return 0
	}
	return s.CountLE(b) - s.CountLE(a-1)
}

// Cover returns the number of blocking intervals covering time t, i.e.
// intervals [l, l+tau] with l <= t <= l+tau.
func (s *Set) Cover(t int64) int {
	return s.CountRange(t-s.tau, t)
}

// KthLargestLE returns the k-th largest endpoint among the multiset entries
// <= x (k >= 1), with ok=false when fewer than k such entries exist. The
// durability-profile sweep uses it to locate the k-th most recent
// higher-scoring record in one O(log n) step.
func (s *Set) KthLargestLE(x int64, k int) (key int64, ok bool) {
	if k < 1 {
		return 0, false
	}
	c := s.CountLE(x)
	if c < k {
		return 0, false
	}
	// The k-th largest among entries <= x is the (c-k+1)-th smallest
	// overall, which is itself <= x because its ascending rank is <= c.
	return s.selectAsc(c - k + 1), true
}

// selectAsc returns the rank-th smallest key (1-based, counting
// multiplicity). The caller guarantees 1 <= rank <= Len().
func (s *Set) selectAsc(rank int) int64 {
	n := s.root
	for {
		leftCount := count(n.left)
		switch {
		case rank <= leftCount:
			n = n.left
		case rank <= leftCount+n.mult:
			return n.key
		default:
			rank -= leftCount + n.mult
			n = n.right
		}
	}
}

// Blocked reports whether time t is covered by at least k intervals.
func (s *Set) Blocked(t int64, k int) bool {
	return s.Cover(t) >= k
}
