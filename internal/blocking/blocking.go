// Package blocking implements the blocking mechanism of the score-prioritized
// durable top-k algorithms (paper §IV, Fig. 3).
//
// Every processed high-score record p contributes a blocking interval
// [p.t, p.t+tau]. A candidate record q arriving at time t cannot be
// tau-durable once t is covered by k or more blocking intervals, because
// each covering interval witnesses a record with higher score inside q's
// durability window. Since all intervals share the same length tau, the
// cover count of t equals the number of interval left endpoints in
// [t-tau, t]; the structure therefore maintains a multiset of left endpoints
// in an order-statistic treap with O(log n) expected insert and count.
package blocking

// nilNode marks an absent child in the slab-backed treap.
const nilNode = int32(-1)

// Set maintains the left endpoints of equal-length blocking intervals and
// answers coverage-count queries. The zero value is not usable; construct
// with NewSet. Nodes live in one contiguous slab indexed by int32 handles
// rather than per-node heap allocations, so a Set can be Reset and reused
// across queries with zero steady-state allocations (the per-query arenas of
// package core rely on this). Not safe for concurrent use.
type Set struct {
	tau   int64
	nodes []node
	root  int32
	size  int // number of intervals added, counting duplicates
	rng   uint64
}

type node struct {
	key         int64 // interval left endpoint
	prio        uint64
	mult        int32 // multiplicity of key
	count       int32 // total multiplicity in subtree
	left, right int32
}

// NewSet returns an empty blocking set for intervals of length tau >= 0.
func NewSet(tau int64) *Set {
	s := &Set{}
	s.Reset(tau)
	return s
}

// Reset empties the set and re-arms it for intervals of length tau, keeping
// the node slab for reuse: after the first queries have grown the slab,
// Reset-and-refill cycles allocate nothing.
func (s *Set) Reset(tau int64) {
	s.tau = tau
	s.nodes = s.nodes[:0]
	s.root = nilNode
	s.size = 0
	s.rng = 0x9e3779b97f4a7c15
}

// Tau returns the interval length.
func (s *Set) Tau() int64 { return s.tau }

// Len returns the number of intervals added, counting duplicates.
func (s *Set) Len() int { return s.size }

// next is a SplitMix64 step used for treap priorities; deterministic so runs
// are reproducible.
func (s *Set) next() uint64 {
	s.rng += 0x9e3779b97f4a7c15
	z := s.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *Set) count(ni int32) int32 {
	if ni == nilNode {
		return 0
	}
	return s.nodes[ni].count
}

func (s *Set) recount(ni int32) {
	n := &s.nodes[ni]
	n.count = n.mult + s.count(n.left) + s.count(n.right)
}

// Add inserts the blocking interval [left, left+tau].
func (s *Set) Add(left int64) {
	s.root = s.insert(s.root, left)
	s.size++
}

func (s *Set) insert(ni int32, key int64) int32 {
	if ni == nilNode {
		s.nodes = append(s.nodes, node{
			key: key, mult: 1, count: 1, prio: s.next(),
			left: nilNode, right: nilNode,
		})
		return int32(len(s.nodes) - 1)
	}
	// Re-acquire the node pointer after every recursive insert: the slab may
	// have been reallocated by an append deeper in the tree.
	switch n := &s.nodes[ni]; {
	case key == n.key:
		n.mult++
		n.count++
		return ni
	case key < n.key:
		l := s.insert(n.left, key)
		n = &s.nodes[ni]
		n.left = l
		if s.nodes[l].prio > n.prio {
			ni = s.rotateRight(ni)
		}
	default:
		r := s.insert(n.right, key)
		n = &s.nodes[ni]
		n.right = r
		if s.nodes[r].prio > n.prio {
			ni = s.rotateLeft(ni)
		}
	}
	s.recount(ni)
	return ni
}

func (s *Set) rotateRight(ni int32) int32 {
	n := &s.nodes[ni]
	li := n.left
	l := &s.nodes[li]
	n.left = l.right
	l.right = ni
	s.recount(ni)
	s.recount(li)
	return li
}

func (s *Set) rotateLeft(ni int32) int32 {
	n := &s.nodes[ni]
	ri := n.right
	r := &s.nodes[ri]
	n.right = r.left
	r.left = ni
	s.recount(ni)
	s.recount(ri)
	return ri
}

// CountLE returns the number of intervals whose left endpoint is <= x.
func (s *Set) CountLE(x int64) int {
	ni := s.root
	total := int32(0)
	for ni != nilNode {
		n := &s.nodes[ni]
		if x < n.key {
			ni = n.left
		} else {
			total += n.mult + s.count(n.left)
			ni = n.right
		}
	}
	return int(total)
}

// CountRange returns the number of intervals with left endpoint in the
// closed range [a, b]; zero when a > b.
func (s *Set) CountRange(a, b int64) int {
	if a > b {
		return 0
	}
	return s.CountLE(b) - s.CountLE(a-1)
}

// Cover returns the number of blocking intervals covering time t, i.e.
// intervals [l, l+tau] with l <= t <= l+tau.
func (s *Set) Cover(t int64) int {
	return s.CountRange(t-s.tau, t)
}

// KthLargestLE returns the k-th largest endpoint among the multiset entries
// <= x (k >= 1), with ok=false when fewer than k such entries exist. The
// durability-profile sweep uses it to locate the k-th most recent
// higher-scoring record in one O(log n) step.
func (s *Set) KthLargestLE(x int64, k int) (key int64, ok bool) {
	if k < 1 {
		return 0, false
	}
	c := s.CountLE(x)
	if c < k {
		return 0, false
	}
	// The k-th largest among entries <= x is the (c-k+1)-th smallest
	// overall, which is itself <= x because its ascending rank is <= c.
	return s.selectAsc(c - k + 1), true
}

// selectAsc returns the rank-th smallest key (1-based, counting
// multiplicity). The caller guarantees 1 <= rank <= Len().
func (s *Set) selectAsc(rank int) int64 {
	ni := s.root
	for {
		n := &s.nodes[ni]
		leftCount := int(s.count(n.left))
		switch {
		case rank <= leftCount:
			ni = n.left
		case rank <= leftCount+int(n.mult):
			return n.key
		default:
			rank -= leftCount + int(n.mult)
			ni = n.right
		}
	}
}

// Blocked reports whether time t is covered by at least k intervals.
func (s *Set) Blocked(t int64, k int) bool {
	return s.Cover(t) >= k
}
