package sub

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/monitor"
	"repro/internal/score"
)

// countingScorer counts Score invocations and shares a canonical key with
// every other countingScorer built over the same weights, proving the
// registry scores once per group, not once per subscription.
type countingScorer struct {
	inner *score.Linear
	calls *int
}

func (c *countingScorer) Score(a []float64) float64 { *c.calls++; return c.inner.Score(a) }
func (c *countingScorer) Dims() int                 { return c.inner.Dims() }
func (c *countingScorer) CanonicalKey() string      { return c.inner.CanonicalKey() }

func feed(rng *rand.Rand, n, spread int) ([]int64, [][]float64) {
	times := make([]int64, n)
	attrs := make([][]float64, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		t += int64(1 + rng.Intn(3))
		times[i] = t
		attrs[i] = []float64{float64(rng.Intn(spread)), rng.Float64()}
	}
	return times, attrs
}

// TestMatchesStandaloneMonitor: a subscription's events must equal a
// dedicated monitor fed the same stream — the registry adds routing and
// shared scoring, never different verdicts.
func TestMatchesStandaloneMonitor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	times, attrs := feed(rng, 300, 6)
	s := score.MustLinear(1, 0.25)

	ref, err := monitor.New(3, 20, s, monitor.Options{TrackAhead: true})
	if err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(0)
	var got []Event
	id, err := r.Subscribe(Spec{Scorer: s, K: 3, Tau: 20, Decisions: true, Confirms: true},
		func(ev Event) { got = append(got, ev) })
	if err != nil {
		t.Fatal(err)
	}

	var want []Event
	for i := range times {
		dec, confs, err := ref.Observe(times[i], attrs[i])
		if err != nil {
			t.Fatal(err)
		}
		ev := Event{SubID: id, Prefix: i + 1, Seq: uint64(i + 1), Decision: &dec, Confirms: confs}
		want = append(want, ev)
		if err := r.Observe(times[i], attrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}

	// Teardown flushes the same pending set Finish would.
	wantFinal := ref.Finish()
	var final []Event
	r.subs[id].emit = func(ev Event) { final = append(final, ev) }
	if err := r.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if len(final) != 1 || !reflect.DeepEqual(final[0].Confirms, wantFinal) {
		t.Fatalf("final flush %+v, want confirms %+v", final, wantFinal)
	}
	if r.Len() != 0 {
		t.Fatalf("registry holds %d subscriptions after unsubscribe", r.Len())
	}
}

// TestSharedScoringByCanonicalKey: 16 subscriptions over the same canonical
// scorer must score each append exactly once; a subscription with different
// weights forms its own group.
func TestSharedScoringByCanonicalKey(t *testing.T) {
	r := NewRegistry(0)
	var calls int
	const members = 16
	for i := 0; i < members; i++ {
		cs := &countingScorer{inner: score.MustLinear(1, 2), calls: &calls}
		if _, err := r.Subscribe(Spec{Scorer: cs, K: 1 + i%3, Tau: int64(5 + i), Decisions: true, Confirms: true},
			func(Event) {}); err != nil {
			t.Fatal(err)
		}
	}
	var otherCalls int
	other := &countingScorer{inner: score.MustLinear(2, 1), calls: &otherCalls}
	if _, err := r.Subscribe(Spec{Scorer: other, K: 1, Tau: 5, Decisions: true}, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	if g := r.Groups(); g != 2 {
		t.Fatalf("%d groups, want 2", g)
	}
	const appends = 50
	for i := 1; i <= appends; i++ {
		if err := r.Observe(int64(i), []float64{float64(i % 7), 1}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != appends {
		t.Fatalf("shared group scored %d times over %d appends (want one per append, not %d)",
			calls, appends, appends*members)
	}
	if otherCalls != appends {
		t.Fatalf("singleton group scored %d times, want %d", otherCalls, appends)
	}
}

// TestUnkeyedScorersDoNotShare: scorers without a canonical key must stay in
// private groups (sharing would require proving the functions equal).
func TestUnkeyedScorersDoNotShare(t *testing.T) {
	r := NewRegistry(0)
	mk := func() score.Scorer {
		s, err := score.NewMonotoneCombo([]float64{1, 1}, func(x float64) float64 { return x * x }, "sq")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if _, err := r.Subscribe(Spec{Scorer: mk(), K: 1, Tau: 5, Decisions: true}, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Subscribe(Spec{Scorer: mk(), K: 1, Tau: 5, Decisions: true}, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	if g := r.Groups(); g != 2 {
		t.Fatalf("unkeyed scorers merged into %d group(s), want 2", g)
	}
}

// TestIntervalFilterAndBase: a bounded subscription registered mid-stream
// only reports verdicts for records inside its interval, with IDs offset to
// absolute row indices.
func TestIntervalFilterAndBase(t *testing.T) {
	r := NewRegistry(0)
	s := score.MustLinear(1)
	// Rows 1..10 exist before this subscription attaches.
	for i := 1; i <= 10; i++ {
		if err := r.Observe(int64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var evs []Event
	_, err := r.Subscribe(Spec{
		Scorer: s, K: 1, Tau: 3,
		Bounded: true, Start: 13, End: 16,
		Decisions: true, Confirms: true,
	}, func(ev Event) { evs = append(evs, ev) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 20; i++ {
		if err := r.Observe(int64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var decIDs, confIDs []int
	for _, ev := range evs {
		if ev.Decision != nil {
			decIDs = append(decIDs, ev.Decision.ID)
			if ev.Decision.Time < 13 || ev.Decision.Time > 16 {
				t.Fatalf("decision outside interval: %+v", ev.Decision)
			}
		}
		for _, c := range ev.Confirms {
			confIDs = append(confIDs, c.ID)
		}
	}
	// Times 13..16 are rows 12..15 (0-based): the base offset must map the
	// monitor's local ids (2..5) onto the absolute ones.
	if want := []int{12, 13, 14, 15}; !reflect.DeepEqual(decIDs, want) {
		t.Fatalf("decision ids %v, want %v", decIDs, want)
	}
	if want := []int{12, 13, 14, 15}; !reflect.DeepEqual(confIDs, want) {
		t.Fatalf("confirmation ids %v, want %v", confIDs, want)
	}
}

func TestValidation(t *testing.T) {
	r := NewRegistry(0)
	s := score.MustLinear(1)
	if _, err := r.Subscribe(Spec{Scorer: s, K: 1, Tau: 5}, func(Event) {}); err != ErrNoVerdicts {
		t.Fatalf("no-verdict spec: %v", err)
	}
	if _, err := r.Subscribe(Spec{Scorer: s, K: 0, Tau: 5, Decisions: true}, func(Event) {}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := r.Subscribe(Spec{Scorer: s, K: 1, Tau: 5, Bounded: true, Start: 9, End: 3, Decisions: true}, func(Event) {}); err == nil {
		t.Fatal("inverted interval accepted")
	}
	if err := r.Unsubscribe(99); err != ErrNotFound {
		t.Fatalf("unknown unsubscribe: %v", err)
	}
	r.Close()
	if _, err := r.Subscribe(Spec{Scorer: s, K: 1, Tau: 5, Decisions: true}, func(Event) {}); err != ErrClosed {
		t.Fatalf("subscribe after close: %v", err)
	}
	if err := r.Observe(1, []float64{1}); err != ErrClosed {
		t.Fatalf("observe after close: %v", err)
	}
}

// TestCloseFlushesAll: Close must flush every subscription's pending
// confirmations, truncated.
func TestCloseFlushesAll(t *testing.T) {
	r := NewRegistry(0)
	s := score.MustLinear(1)
	flushed := make(map[uint64]int)
	for i := 0; i < 4; i++ {
		var id uint64
		got, err := r.Subscribe(Spec{Scorer: s, K: 1, Tau: 1000, Confirms: true}, func(ev Event) {
			for _, c := range ev.Confirms {
				if !c.Truncated {
					panic("pending confirmation not truncated on close")
				}
			}
			flushed[id] += len(ev.Confirms)
		})
		if err != nil {
			t.Fatal(err)
		}
		id = got
	}
	for i := 1; i <= 6; i++ {
		if err := r.Observe(int64(i), []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	if len(flushed) != 4 {
		t.Fatalf("flushed %d subscriptions, want 4", len(flushed))
	}
	for id, n := range flushed {
		if n != 6 {
			t.Fatalf("subscription %d flushed %d confirmations, want 6", id, n)
		}
	}
}

// replayFrom builds a RowSource over parallel time/attr slices.
func replayFrom(times []int64, attrs [][]float64) RowSource {
	return func(lo, hi int, observe func(t int64, attrs []float64) error) error {
		for i := lo; i < hi; i++ {
			if err := observe(times[i], attrs[i]); err != nil {
				return err
			}
		}
		return nil
	}
}

// TestSubscribeFromBackfill: a historical-base subscription must receive
// the exact event stream — verdicts and sequence numbers — that a
// subscription registered at that base would have produced live.
func TestSubscribeFromBackfill(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	times, attrs := feed(rng, 200, 8)
	s := score.MustLinear(1, 0.5)
	rows := replayFrom(times, attrs)
	spec := Spec{Scorer: s, K: 2, Tau: 15, Decisions: true, Confirms: true}

	// Reference: subscribed at base 40, observed everything live.
	ref := NewRegistry(40)
	var want []Event
	refID, err := ref.Subscribe(spec, func(ev Event) { want = append(want, ev) })
	if err != nil {
		t.Fatal(err)
	}

	// Candidate: rows flow first, subscription arrives late with
	// fromPrefix=40 and must backfill.
	r := NewRegistry(40)
	for i := 40; i < 150; i++ {
		if err := ref.Observe(times[i], attrs[i]); err != nil {
			t.Fatal(err)
		}
		if err := r.Observe(times[i], attrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	var got []Event
	id, err := r.SubscribeFrom(spec, 40, func(ev Event) { got = append(got, ev) }, rows)
	if err != nil {
		t.Fatal(err)
	}
	// Splice: both keep observing live past the subscribe point.
	for i := 150; i < 200; i++ {
		if err := ref.Observe(times[i], attrs[i]); err != nil {
			t.Fatal(err)
		}
		if err := r.Observe(times[i], attrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("backfill+live produced %d events, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		w.SubID = id
		_ = refID
		if !reflect.DeepEqual(got[i], w) {
			t.Fatalf("event %d:\n got  %+v\n want %+v", i, got[i], w)
		}
	}
	// Seqs are contiguous from 1.
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// TestDetachResume: detaching discards events but keeps the registration
// observing; resume re-derives exactly the missed suffix with the original
// sequence numbers.
func TestDetachResume(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	times, attrs := feed(rng, 240, 8)
	s := score.MustLinear(0.3, 2)
	rows := replayFrom(times, attrs)
	spec := Spec{Scorer: s, K: 1, Tau: 12, Decisions: true, Confirms: true}

	// Reference stream: one subscription that never detaches.
	ref := NewRegistry(0)
	var want []Event
	if _, err := ref.Subscribe(spec, func(ev Event) { want = append(want, ev) }); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(0)
	var got []Event
	id, err := r.Subscribe(spec, func(ev Event) { got = append(got, ev) })
	if err != nil {
		t.Fatal(err)
	}
	feedBoth := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := ref.Observe(times[i], attrs[i]); err != nil {
				t.Fatal(err)
			}
			if err := r.Observe(times[i], attrs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	feedBoth(0, 80)
	delivered := len(got)
	lastPrefix := 0
	if delivered > 0 {
		lastPrefix = got[delivered-1].Prefix
	}
	if err := r.Detach(id); err != nil {
		t.Fatal(err)
	}
	feedBoth(80, 160) // discarded while detached
	if len(got) != delivered {
		t.Fatalf("detached subscription delivered %d new events", len(got)-delivered)
	}
	base, err := r.Resume(id, lastPrefix, func(ev Event) { got = append(got, ev) }, rows)
	if err != nil {
		t.Fatal(err)
	}
	if base != 0 {
		t.Fatalf("resume returned base %d, want 0", base)
	}
	feedBoth(160, 240) // live again
	if len(got) != len(want) {
		t.Fatalf("stitched stream has %d events, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		w.SubID = got[i].SubID
		if !reflect.DeepEqual(got[i], w) {
			t.Fatalf("event %d:\n got  %+v\n want %+v", i, got[i], w)
		}
	}
	// Resume with a stale fromPrefix replays overlap too — duplicates are
	// the client's to drop by seq; here we just prove determinism: same
	// seq, same payload.
	var dup []Event
	if _, err := r.Resume(id, 0, func(ev Event) { dup = append(dup, ev) }, rows); err != nil {
		t.Fatal(err)
	}
	if len(dup) != len(want) {
		t.Fatalf("full re-replay produced %d events, want %d", len(dup), len(want))
	}
	for i := range dup {
		if dup[i].Seq != want[i].Seq || dup[i].Prefix != want[i].Prefix {
			t.Fatalf("re-replayed event %d: (seq %d, prefix %d), want (%d, %d)",
				i, dup[i].Seq, dup[i].Prefix, want[i].Seq, want[i].Prefix)
		}
	}
}

// TestSnapshotRestore: a registry rebuilt from Snapshot via RestoreSub must
// carry on producing the identical event stream, including sequence
// numbers, from the restore point forward.
func TestSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	times, attrs := feed(rng, 200, 10)
	rows := replayFrom(times, attrs)
	src := &Source{Weights: []float64{1, 0.25}}
	spec := Spec{Scorer: score.MustLinear(1, 0.25), K: 2, Tau: 18,
		Decisions: true, Confirms: true, Source: src}
	ephemeral := Spec{Scorer: score.MustLinear(2, 2), K: 1, Tau: 9, Decisions: true}

	ref := NewRegistry(0)
	var want []Event
	id, err := ref.Subscribe(spec, func(ev Event) { want = append(want, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Subscribe(ephemeral, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if err := ref.Observe(times[i], attrs[i]); err != nil {
			t.Fatal(err)
		}
	}

	states := ref.Snapshot()
	if len(states) != 1 {
		t.Fatalf("snapshot holds %d states, want 1 (ephemeral subs excluded)", len(states))
	}
	st := states[0]
	if st.ID != id || st.Base != 0 || st.Spec.Source != src {
		t.Fatalf("snapshot state %+v", st)
	}
	if st.Acked != 120 {
		t.Fatalf("acked %d, want 120", st.Acked)
	}

	// "Restart": fresh registry at the same committed prefix.
	restored := NewRegistry(120)
	if err := restored.RestoreSub(st, rows); err != nil {
		t.Fatal(err)
	}
	restored.RestoreNextID(ref.NextID())
	if restored.Len() != 1 {
		t.Fatalf("restored registry holds %d subs", restored.Len())
	}
	// Resume from the acked prefix: nothing to backfill, stream continues.
	var got []Event
	if _, err := restored.Resume(st.ID, st.Acked, func(ev Event) { got = append(got, ev) }, rows); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("resume at acked prefix replayed %d events", len(got))
	}
	seen := len(want)
	for i := 120; i < 200; i++ {
		if err := ref.Observe(times[i], attrs[i]); err != nil {
			t.Fatal(err)
		}
		if err := restored.Observe(times[i], attrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	tail := want[seen:]
	if len(got) != len(tail) {
		t.Fatalf("restored stream has %d events past restart, want %d", len(got), len(tail))
	}
	for i := range tail {
		if !reflect.DeepEqual(got[i], tail[i]) {
			t.Fatalf("post-restore event %d:\n got  %+v\n want %+v", i, got[i], tail[i])
		}
	}
	// New ids never alias restored ones.
	nid, err := restored.Subscribe(ephemeral, func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if nid <= id {
		t.Fatalf("new id %d not past restored id %d", nid, id)
	}
}

// TestRestoreValidation: restore rejects duplicates, missing scorers, and
// bases beyond the committed prefix.
func TestRestoreValidation(t *testing.T) {
	rows := replayFrom(nil, nil)
	r := NewRegistry(0)
	spec := Spec{Scorer: score.MustLinear(1), K: 1, Tau: 5, Decisions: true}
	if err := r.RestoreSub(State{ID: 1, Spec: spec, Base: 7}, rows); err == nil {
		t.Fatal("base beyond prefix accepted")
	}
	noScorer := spec
	noScorer.Scorer = nil
	if err := r.RestoreSub(State{ID: 1, Spec: noScorer, Base: 0}, rows); err == nil {
		t.Fatal("nil scorer accepted")
	}
	if err := r.RestoreSub(State{ID: 3, Spec: spec, Base: 0}, rows); err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreSub(State{ID: 3, Spec: spec, Base: 0}, rows); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := r.Resume(99, 0, func(Event) {}, rows); err != ErrNotFound {
		t.Fatalf("resume of unknown id: %v", err)
	}
	if err := r.Detach(99); err != ErrNotFound {
		t.Fatalf("detach of unknown id: %v", err)
	}
}

// TestOnChange fires on registration-set mutations only.
func TestOnChange(t *testing.T) {
	r := NewRegistry(0)
	var fires int
	r.SetOnChange(func() { fires++ })
	id, err := r.Subscribe(Spec{Scorer: score.MustLinear(1), K: 1, Tau: 5, Decisions: true}, func(Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("%d fires after subscribe, want 1", fires)
	}
	if err := r.Observe(1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("observe fired onChange (%d fires)", fires)
	}
	if err := r.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if fires != 2 {
		t.Fatalf("%d fires after unsubscribe, want 2", fires)
	}
}
