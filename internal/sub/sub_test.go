package sub

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/monitor"
	"repro/internal/score"
)

// countingScorer counts Score invocations and shares a canonical key with
// every other countingScorer built over the same weights, proving the
// registry scores once per group, not once per subscription.
type countingScorer struct {
	inner *score.Linear
	calls *int
}

func (c *countingScorer) Score(a []float64) float64 { *c.calls++; return c.inner.Score(a) }
func (c *countingScorer) Dims() int                 { return c.inner.Dims() }
func (c *countingScorer) CanonicalKey() string      { return c.inner.CanonicalKey() }

func feed(rng *rand.Rand, n, spread int) ([]int64, [][]float64) {
	times := make([]int64, n)
	attrs := make([][]float64, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		t += int64(1 + rng.Intn(3))
		times[i] = t
		attrs[i] = []float64{float64(rng.Intn(spread)), rng.Float64()}
	}
	return times, attrs
}

// TestMatchesStandaloneMonitor: a subscription's events must equal a
// dedicated monitor fed the same stream — the registry adds routing and
// shared scoring, never different verdicts.
func TestMatchesStandaloneMonitor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	times, attrs := feed(rng, 300, 6)
	s := score.MustLinear(1, 0.25)

	ref, err := monitor.New(3, 20, s, monitor.Options{TrackAhead: true})
	if err != nil {
		t.Fatal(err)
	}

	r := NewRegistry(0)
	var got []Event
	id, err := r.Subscribe(Spec{Scorer: s, K: 3, Tau: 20, Decisions: true, Confirms: true},
		func(ev Event) { got = append(got, ev) })
	if err != nil {
		t.Fatal(err)
	}

	var want []Event
	for i := range times {
		dec, confs, err := ref.Observe(times[i], attrs[i])
		if err != nil {
			t.Fatal(err)
		}
		ev := Event{SubID: id, Prefix: i + 1, Decision: &dec, Confirms: confs}
		want = append(want, ev)
		if err := r.Observe(times[i], attrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}

	// Teardown flushes the same pending set Finish would.
	wantFinal := ref.Finish()
	var final []Event
	r.subs[id].emit = func(ev Event) { final = append(final, ev) }
	if err := r.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if len(final) != 1 || !reflect.DeepEqual(final[0].Confirms, wantFinal) {
		t.Fatalf("final flush %+v, want confirms %+v", final, wantFinal)
	}
	if r.Len() != 0 {
		t.Fatalf("registry holds %d subscriptions after unsubscribe", r.Len())
	}
}

// TestSharedScoringByCanonicalKey: 16 subscriptions over the same canonical
// scorer must score each append exactly once; a subscription with different
// weights forms its own group.
func TestSharedScoringByCanonicalKey(t *testing.T) {
	r := NewRegistry(0)
	var calls int
	const members = 16
	for i := 0; i < members; i++ {
		cs := &countingScorer{inner: score.MustLinear(1, 2), calls: &calls}
		if _, err := r.Subscribe(Spec{Scorer: cs, K: 1 + i%3, Tau: int64(5 + i), Decisions: true, Confirms: true},
			func(Event) {}); err != nil {
			t.Fatal(err)
		}
	}
	var otherCalls int
	other := &countingScorer{inner: score.MustLinear(2, 1), calls: &otherCalls}
	if _, err := r.Subscribe(Spec{Scorer: other, K: 1, Tau: 5, Decisions: true}, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	if g := r.Groups(); g != 2 {
		t.Fatalf("%d groups, want 2", g)
	}
	const appends = 50
	for i := 1; i <= appends; i++ {
		if err := r.Observe(int64(i), []float64{float64(i % 7), 1}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != appends {
		t.Fatalf("shared group scored %d times over %d appends (want one per append, not %d)",
			calls, appends, appends*members)
	}
	if otherCalls != appends {
		t.Fatalf("singleton group scored %d times, want %d", otherCalls, appends)
	}
}

// TestUnkeyedScorersDoNotShare: scorers without a canonical key must stay in
// private groups (sharing would require proving the functions equal).
func TestUnkeyedScorersDoNotShare(t *testing.T) {
	r := NewRegistry(0)
	mk := func() score.Scorer {
		s, err := score.NewMonotoneCombo([]float64{1, 1}, func(x float64) float64 { return x * x }, "sq")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if _, err := r.Subscribe(Spec{Scorer: mk(), K: 1, Tau: 5, Decisions: true}, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Subscribe(Spec{Scorer: mk(), K: 1, Tau: 5, Decisions: true}, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	if g := r.Groups(); g != 2 {
		t.Fatalf("unkeyed scorers merged into %d group(s), want 2", g)
	}
}

// TestIntervalFilterAndBase: a bounded subscription registered mid-stream
// only reports verdicts for records inside its interval, with IDs offset to
// absolute row indices.
func TestIntervalFilterAndBase(t *testing.T) {
	r := NewRegistry(0)
	s := score.MustLinear(1)
	// Rows 1..10 exist before this subscription attaches.
	for i := 1; i <= 10; i++ {
		if err := r.Observe(int64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var evs []Event
	_, err := r.Subscribe(Spec{
		Scorer: s, K: 1, Tau: 3,
		Bounded: true, Start: 13, End: 16,
		Decisions: true, Confirms: true,
	}, func(ev Event) { evs = append(evs, ev) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 20; i++ {
		if err := r.Observe(int64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var decIDs, confIDs []int
	for _, ev := range evs {
		if ev.Decision != nil {
			decIDs = append(decIDs, ev.Decision.ID)
			if ev.Decision.Time < 13 || ev.Decision.Time > 16 {
				t.Fatalf("decision outside interval: %+v", ev.Decision)
			}
		}
		for _, c := range ev.Confirms {
			confIDs = append(confIDs, c.ID)
		}
	}
	// Times 13..16 are rows 12..15 (0-based): the base offset must map the
	// monitor's local ids (2..5) onto the absolute ones.
	if want := []int{12, 13, 14, 15}; !reflect.DeepEqual(decIDs, want) {
		t.Fatalf("decision ids %v, want %v", decIDs, want)
	}
	if want := []int{12, 13, 14, 15}; !reflect.DeepEqual(confIDs, want) {
		t.Fatalf("confirmation ids %v, want %v", confIDs, want)
	}
}

func TestValidation(t *testing.T) {
	r := NewRegistry(0)
	s := score.MustLinear(1)
	if _, err := r.Subscribe(Spec{Scorer: s, K: 1, Tau: 5}, func(Event) {}); err != ErrNoVerdicts {
		t.Fatalf("no-verdict spec: %v", err)
	}
	if _, err := r.Subscribe(Spec{Scorer: s, K: 0, Tau: 5, Decisions: true}, func(Event) {}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := r.Subscribe(Spec{Scorer: s, K: 1, Tau: 5, Bounded: true, Start: 9, End: 3, Decisions: true}, func(Event) {}); err == nil {
		t.Fatal("inverted interval accepted")
	}
	if err := r.Unsubscribe(99); err != ErrNotFound {
		t.Fatalf("unknown unsubscribe: %v", err)
	}
	r.Close()
	if _, err := r.Subscribe(Spec{Scorer: s, K: 1, Tau: 5, Decisions: true}, func(Event) {}); err != ErrClosed {
		t.Fatalf("subscribe after close: %v", err)
	}
	if err := r.Observe(1, []float64{1}); err != ErrClosed {
		t.Fatalf("observe after close: %v", err)
	}
}

// TestCloseFlushesAll: Close must flush every subscription's pending
// confirmations, truncated.
func TestCloseFlushesAll(t *testing.T) {
	r := NewRegistry(0)
	s := score.MustLinear(1)
	flushed := make(map[uint64]int)
	for i := 0; i < 4; i++ {
		var id uint64
		got, err := r.Subscribe(Spec{Scorer: s, K: 1, Tau: 1000, Confirms: true}, func(ev Event) {
			for _, c := range ev.Confirms {
				if !c.Truncated {
					panic("pending confirmation not truncated on close")
				}
			}
			flushed[id] += len(ev.Confirms)
		})
		if err != nil {
			t.Fatal(err)
		}
		id = got
	}
	for i := 1; i <= 6; i++ {
		if err := r.Observe(int64(i), []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	if len(flushed) != 4 {
		t.Fatalf("flushed %d subscriptions, want 4", len(flushed))
	}
	for id, n := range flushed {
		if n != 6 {
			t.Fatalf("subscription %d flushed %d confirmations, want 6", id, n)
		}
	}
}
