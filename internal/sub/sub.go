// Package sub maintains standing durable top-k queries over a live append
// stream — the "continuous top-k" serving mode of Vouzoukidou et al. that
// the ROADMAP targets. Clients register subscriptions (scorer, k, tau,
// optional interval filter); every append then yields per-subscription
// verdicts from a dedicated online monitor: an instant look-back Decision
// for the new record and delayed look-ahead Confirmations for past records
// whose windows closed.
//
// The registry shares per-append work across subscriptions: all
// subscriptions whose scorers have the same canonical key
// (score.CanonicalKey) form a group that scores each arrival exactly once,
// fanning the value out through monitor.ObserveScored. Subscriptions are
// keyed to the engine's absolute row count ("prefix"): every emitted event
// names the exact acknowledged prefix it corresponds to, so a consumer can
// reproduce any verdict bit-identically by re-running the equivalent
// durable query over that prefix.
//
// Verdicts are a deterministic function of (spec, committed row stream).
// The registry leans on that everywhere it must bridge a delivery gap:
// instead of buffering undelivered events it re-derives them by replaying
// committed rows through a fresh monitor — for historical-base
// subscriptions (SubscribeFrom), for reattaching a detached subscription
// past the prefix the consumer last saw (Resume), and for rebuilding
// registrations from a checkpoint manifest after a restart (RestoreSub).
// Every event carries a per-subscription sequence number that is part of
// the same deterministic stream, so consumers can prove gap-freedom.
//
// The registry is engine-agnostic on purpose: it consumes the committed
// append stream (Observe) and does not care whether rows land in a
// LiveEngine or a LiveShardedEngine, nor when shards seal or freeze —
// those only bump the engine's epoch, never reorder or drop committed
// rows, so monitor state carries across seals untouched.
package sub

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/monitor"
	"repro/internal/score"
)

// Source is the persistable description of a subscription's scorer: either
// linear weights or a compiled expression with its attribute names. The
// registry never interprets it — the layer that registered the scorer fills
// it in, and the layer that restores from a checkpoint recompiles it.
type Source struct {
	Weights []float64
	Expr    string
	Names   []string
}

// Spec describes one standing query.
type Spec struct {
	Scorer score.Scorer
	K      int
	Tau    int64

	// Bounded restricts pushed verdicts to records whose arrival time lies
	// in [Start, End]; the monitor still observes every append to keep its
	// windows exact.
	Bounded    bool
	Start, End int64

	// Decisions pushes the instant look-back verdict per append; Confirms
	// pushes the delayed look-ahead verdicts. At least one must be set.
	Decisions bool
	Confirms  bool

	// Source, when non-nil, makes the subscription durable: it is the
	// recipe a restart uses to recompile Scorer. Subscriptions without a
	// Source are skipped by Snapshot and die with the process.
	Source *Source
}

// Event is one batch of verdicts for one subscription, produced by a single
// append (or by Unsubscribe/Close, which flush truncated confirmations).
// Record IDs are absolute dataset row indices.
type Event struct {
	SubID uint64
	// Prefix is the engine's committed row count immediately after the
	// append this event describes. Each subscription produces at most one
	// event per append, so Prefix doubles as a deduplication key on every
	// stream except the final teardown flush (which reuses the last
	// prefix).
	Prefix int
	// Seq numbers this subscription's events 1, 2, 3, … from its base
	// prefix, counting only events that carried verdicts (silent appends
	// do not consume a number). It is derived from the committed stream,
	// so a replay reproduces the same numbering — consumers check
	// contiguity to prove no event was dropped.
	Seq      uint64
	Decision *monitor.Decision
	Confirms []monitor.Confirmation
}

// Emit delivers one event to a subscriber. Called with the registry lock
// held, so implementations must not call back into the registry and should
// hand off quickly (enqueue, not write).
type Emit func(Event)

// RowSource replays committed rows [lo, hi) in commit order through
// observe, stopping at the first error. The registry calls it with its lock
// held, so implementations must not call back into the registry; reading an
// engine's append-stable dataset snapshot is the intended shape.
type RowSource func(lo, hi int, observe func(t int64, attrs []float64) error) error

// Registry multiplexes many standing queries over one append stream.
type Registry struct {
	mu       sync.Mutex
	next     uint64
	prefix   int
	subs     map[uint64]*entry
	groups   map[string]*group // canonical scorer key → shared-scoring group
	closed   bool
	onChange func()
}

type group struct {
	scorer  score.Scorer
	members map[uint64]*entry
}

type entry struct {
	id   uint64
	spec Spec
	base int // absolute row index the monitor's local id 0 maps to
	mon  *monitor.Monitor
	seq  uint64 // sequence number of the last event produced (delivered or not)
	// acked is the prefix of the last event handed to an attached emitter —
	// a best-effort resume hint persisted in checkpoints; the consumer's
	// own fromPrefix is authoritative on resume.
	acked int
	emit  Emit // nil while detached: events are discarded, seq still advances
	key   string
}

// NewRegistry returns a registry attached at the given committed row count.
func NewRegistry(prefix int) *Registry {
	return &Registry{
		prefix: prefix,
		subs:   make(map[uint64]*entry),
		groups: make(map[string]*group),
	}
}

var (
	ErrClosed     = errors.New("sub: registry closed")
	ErrNotFound   = errors.New("sub: no such subscription")
	ErrNoVerdicts = errors.New("sub: subscription must request decisions or confirmations")
)

// SetOnChange installs a hook fired (outside the registry lock) after every
// mutation of the registration set — subscribe, unsubscribe, restore — so a
// persistence layer can re-publish its manifest. At most one hook; nil
// clears it.
func (r *Registry) SetOnChange(fn func()) {
	r.mu.Lock()
	r.onChange = fn
	r.mu.Unlock()
}

func (r *Registry) notify(fn func()) {
	if fn != nil {
		fn()
	}
}

func validateSpec(spec Spec, emit Emit) error {
	if !spec.Decisions && !spec.Confirms {
		return ErrNoVerdicts
	}
	if spec.Bounded && spec.Start > spec.End {
		return errors.New("sub: interval start must be <= end")
	}
	if emit == nil {
		return errors.New("sub: emit must not be nil")
	}
	return nil
}

// Subscribe registers a standing query and returns its id. Events flow to
// emit from the next Observe on; the subscription's monitor starts at the
// current prefix, so verdicts are relative to arrivals from this point.
func (r *Registry) Subscribe(spec Spec, emit Emit) (uint64, error) {
	if err := validateSpec(spec, emit); err != nil {
		return 0, err
	}
	mon, err := monitor.New(spec.K, spec.Tau, spec.Scorer, monitor.Options{TrackAhead: spec.Confirms})
	if err != nil {
		return 0, fmt.Errorf("sub: %w", err)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, ErrClosed
	}
	r.next++
	e := &entry{id: r.next, spec: spec, base: r.prefix, acked: r.prefix, mon: mon, emit: emit}
	r.registerLocked(e)
	fn := r.onChange
	r.mu.Unlock()
	r.notify(fn)
	return e.id, nil
}

// SubscribeFrom registers a standing query whose monitor is anchored at a
// historical prefix: committed rows [fromPrefix, current prefix) are
// replayed through the fresh monitor via rows before the subscription goes
// live, and every verdict the replay produces is emitted — so the consumer
// receives the exact event stream it would have received had it subscribed
// when the stream stood at fromPrefix. Appends are stalled for the duration
// of the replay (it runs under the registry lock); that is the price of a
// splice with no gap and no duplicate.
func (r *Registry) SubscribeFrom(spec Spec, fromPrefix int, emit Emit, rows RowSource) (uint64, error) {
	if err := validateSpec(spec, emit); err != nil {
		return 0, err
	}
	if rows == nil {
		return 0, errors.New("sub: row source must not be nil")
	}
	mon, err := monitor.New(spec.K, spec.Tau, spec.Scorer, monitor.Options{TrackAhead: spec.Confirms})
	if err != nil {
		return 0, fmt.Errorf("sub: %w", err)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, ErrClosed
	}
	if fromPrefix < 0 || fromPrefix > r.prefix {
		n := r.prefix
		r.mu.Unlock()
		return 0, fmt.Errorf("sub: fromPrefix %d outside committed prefix [0, %d]", fromPrefix, n)
	}
	r.next++
	e := &entry{id: r.next, spec: spec, base: fromPrefix, acked: fromPrefix, mon: mon, emit: emit}
	if err := e.replay(fromPrefix, r.prefix, rows, func(ev Event) { e.deliver(ev) }); err != nil {
		r.next--
		r.mu.Unlock()
		return 0, fmt.Errorf("sub: backfill replay: %w", err)
	}
	r.registerLocked(e)
	fn := r.onChange
	r.mu.Unlock()
	r.notify(fn)
	return e.id, nil
}

// registerLocked slots e into the id table and its scoring group.
func (r *Registry) registerLocked(e *entry) {
	if key, ok := score.CanonicalKey(e.spec.Scorer); ok {
		e.key = key
		g := r.groups[key]
		if g == nil {
			g = &group{scorer: e.spec.Scorer, members: make(map[uint64]*entry)}
			r.groups[key] = g
		}
		g.members[e.id] = e
	} else {
		// Unkeyed scorers score per subscription; park them in a private
		// group under an unshareable synthetic key.
		key := fmt.Sprintf("\x00unkeyed:%d", e.id)
		e.key = key
		r.groups[key] = &group{scorer: e.spec.Scorer, members: map[uint64]*entry{e.id: e}}
	}
	r.subs[e.id] = e
}

// replay feeds committed rows [lo, hi) through the entry's monitor and
// hands every produced event (with its deterministic sequence number) to
// fn. Caller holds the registry lock.
func (e *entry) replay(lo, hi int, rows RowSource, fn func(Event)) error {
	if lo >= hi {
		return nil
	}
	prefix := lo
	return rows(lo, hi, func(t int64, attrs []float64) error {
		dec, confs, err := e.mon.Observe(t, attrs)
		if err != nil {
			return fmt.Errorf("row %d: %w", prefix, err)
		}
		prefix++
		if ev := e.event(prefix, t, dec, confs); ev != nil {
			e.seq++
			ev.Seq = e.seq
			if fn != nil {
				fn(*ev)
			}
		}
		return nil
	})
}

// deliver stamps the already-sequenced event as acknowledged and emits it.
func (e *entry) deliver(ev Event) {
	if e.emit == nil {
		return
	}
	e.emit(ev)
	e.acked = ev.Prefix
}

// Detach disconnects a subscription's emitter without dropping its
// registration: the monitor keeps observing and sequence numbers keep
// advancing, but events are discarded until Resume reattaches a consumer.
// This is how a durable subscription survives its connection.
func (r *Registry) Detach(id uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.subs[id]
	if !ok {
		return ErrNotFound
	}
	e.emit = nil
	return nil
}

// Resume reattaches a consumer to a registered subscription. Events the
// consumer missed — everything past fromPrefix, whether discarded while
// detached or lost in flight — are re-derived by replaying the committed
// rows [base, prefix) through a throwaway monitor and emitted before the
// subscription goes live again, with the same sequence numbers the
// originals carried. Returns the subscription's base prefix. Appends stall
// during the replay (registry lock), buying an exactly-once splice.
func (r *Registry) Resume(id uint64, fromPrefix int, emit Emit, rows RowSource) (int, error) {
	return r.ResumeNotify(id, fromPrefix, emit, rows, nil)
}

// ResumeNotify is Resume with a readiness hook: ready (when non-nil) runs
// once validation and the shadow replay have succeeded — the resume is at
// that point certain to complete — but before the backlog is delivered
// through emit. A server uses it to put its acknowledgment on the wire ahead
// of the replayed events, so the consumer can record progress incrementally
// as the backlog arrives instead of seeing nothing until a potentially large
// replay has fully flushed (on a flaky connection that ordering would starve
// resume of progress entirely). The hook runs under the registry lock: it
// must not block and must not call back into the registry.
func (r *Registry) ResumeNotify(id uint64, fromPrefix int, emit Emit, rows RowSource, ready func(base int)) (int, error) {
	if emit == nil {
		return 0, errors.New("sub: emit must not be nil")
	}
	if rows == nil {
		return 0, errors.New("sub: row source must not be nil")
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, ErrClosed
	}
	e, ok := r.subs[id]
	if !ok {
		r.mu.Unlock()
		return 0, ErrNotFound
	}
	if fromPrefix < 0 || fromPrefix > r.prefix {
		n := r.prefix
		r.mu.Unlock()
		return 0, fmt.Errorf("sub: fromPrefix %d outside committed prefix [0, %d]", fromPrefix, n)
	}
	mon, err := monitor.New(e.spec.K, e.spec.Tau, e.spec.Scorer, monitor.Options{TrackAhead: e.spec.Confirms})
	if err != nil {
		r.mu.Unlock()
		return 0, fmt.Errorf("sub: %w", err)
	}
	// A shadow entry replays the full deterministic stream; only the part
	// past fromPrefix is delivered. The live entry's monitor is already
	// current and must not observe anything twice.
	shadow := &entry{id: e.id, spec: e.spec, base: e.base, mon: mon}
	var backlog []Event
	if err := shadow.replay(e.base, r.prefix, rows, func(ev Event) {
		if ev.Prefix > fromPrefix {
			backlog = append(backlog, ev)
		}
	}); err != nil {
		r.mu.Unlock()
		return 0, fmt.Errorf("sub: resume replay: %w", err)
	}
	if shadow.seq != e.seq {
		r.mu.Unlock()
		return 0, fmt.Errorf("sub: resume replay diverged: rebuilt seq %d, live seq %d", shadow.seq, e.seq)
	}
	if ready != nil {
		ready(e.base)
	}
	e.emit = emit
	for _, ev := range backlog {
		e.deliver(ev)
	}
	base := e.base
	r.mu.Unlock()
	return base, nil
}

// State is the persistable snapshot of one registration.
type State struct {
	ID    uint64
	Spec  Spec
	Base  int
	Acked int
}

// Snapshot returns the durable registrations (those carrying a scorer
// Source), for a persistence layer to write alongside its checkpoint
// manifest.
func (r *Registry) Snapshot() []State {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]State, 0, len(r.subs))
	for _, e := range r.subs {
		if e.spec.Source == nil {
			continue
		}
		out = append(out, State{ID: e.id, Spec: e.spec, Base: e.base, Acked: e.acked})
	}
	return out
}

// NextID returns the last subscription id handed out. Persisting it across
// restarts keeps retired ids from being reissued to unrelated
// subscriptions, which would alias resumes.
func (r *Registry) NextID() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// RestoreNextID raises the id counter to at least n.
func (r *Registry) RestoreNextID(n uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.next {
		r.next = n
	}
}

// RestoreSub rebuilds a registration from a persisted State: the monitor is
// reconstructed by silently replaying committed rows [st.Base, prefix) —
// re-deriving, not re-delivering, so sequence numbers land exactly where
// they stood — and the subscription is registered detached, waiting for a
// Resume. st.Spec.Scorer must already be recompiled from its Source.
func (r *Registry) RestoreSub(st State, rows RowSource) error {
	if !st.Spec.Decisions && !st.Spec.Confirms {
		return ErrNoVerdicts
	}
	if st.Spec.Scorer == nil {
		return errors.New("sub: restore requires a recompiled scorer")
	}
	if rows == nil {
		return errors.New("sub: row source must not be nil")
	}
	mon, err := monitor.New(st.Spec.K, st.Spec.Tau, st.Spec.Scorer, monitor.Options{TrackAhead: st.Spec.Confirms})
	if err != nil {
		return fmt.Errorf("sub: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, dup := r.subs[st.ID]; dup {
		return fmt.Errorf("sub: restore: id %d already registered", st.ID)
	}
	if st.Base < 0 || st.Base > r.prefix {
		return fmt.Errorf("sub: restore: base %d outside committed prefix [0, %d]", st.Base, r.prefix)
	}
	e := &entry{id: st.ID, spec: st.Spec, base: st.Base, acked: st.Acked, mon: mon}
	if err := e.replay(st.Base, r.prefix, rows, nil); err != nil {
		return fmt.Errorf("sub: restore replay: %w", err)
	}
	r.registerLocked(e)
	if st.ID > r.next {
		r.next = st.ID
	}
	return nil
}

// Unsubscribe drops a subscription. If it tracked confirmations, the still
// pending look-ahead candidates are flushed as one final event, marked
// Truncated — nothing observed refuted them, but their windows were cut
// short (monitor.Finish semantics).
func (r *Registry) Unsubscribe(id uint64) error {
	r.mu.Lock()
	err := r.dropLocked(id)
	fn := r.onChange
	r.mu.Unlock()
	if err == nil {
		r.notify(fn)
	}
	return err
}

func (r *Registry) dropLocked(id uint64) error {
	e, ok := r.subs[id]
	if !ok {
		return ErrNotFound
	}
	delete(r.subs, id)
	if g := r.groups[e.key]; g != nil {
		delete(g.members, id)
		if len(g.members) == 0 {
			delete(r.groups, e.key)
		}
	}
	if final := e.finalEvent(r.prefix); final != nil {
		e.seq++
		final.Seq = e.seq
		e.deliver(*final)
	}
	return nil
}

// Close drops every subscription, flushing truncated confirmations.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for id := range r.subs {
		_ = r.dropLocked(id)
	}
}

// Observe ingests one committed append. The caller must present every
// committed row exactly once, in commit order; times are strictly
// increasing (enforced by the engines upstream and re-checked by each
// monitor).
func (r *Registry) Observe(t int64, attrs []float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	r.prefix++
	for _, g := range r.groups {
		sc := g.scorer.Score(attrs)
		for _, e := range g.members {
			dec, confs, err := e.mon.ObserveScored(t, sc)
			if err != nil {
				return fmt.Errorf("sub: subscription %d: %w", e.id, err)
			}
			if ev := e.event(r.prefix, t, dec, confs); ev != nil {
				e.seq++
				ev.Seq = e.seq
				e.deliver(*ev)
			}
		}
	}
	return nil
}

// event assembles the filtered, id-translated event for one append, or nil
// when nothing passes the subscription's filters.
func (e *entry) event(prefix int, t int64, dec monitor.Decision, confs []monitor.Confirmation) *Event {
	ev := Event{SubID: e.id, Prefix: prefix}
	if e.spec.Decisions && e.inInterval(t) {
		dec.ID += e.base
		ev.Decision = &dec
	}
	if e.spec.Confirms {
		for _, c := range confs {
			if !e.inInterval(c.Time) {
				continue
			}
			c.ID += e.base
			ev.Confirms = append(ev.Confirms, c)
		}
	}
	if ev.Decision == nil && len(ev.Confirms) == 0 {
		return nil
	}
	return &ev
}

// finalEvent flushes the monitor's pending candidates on teardown, or nil
// if nothing was pending or confirmations were not requested.
func (e *entry) finalEvent(prefix int) *Event {
	if !e.spec.Confirms {
		return nil
	}
	ev := Event{SubID: e.id, Prefix: prefix}
	for _, c := range e.mon.Finish() {
		if !e.inInterval(c.Time) {
			continue
		}
		c.ID += e.base
		ev.Confirms = append(ev.Confirms, c)
	}
	if len(ev.Confirms) == 0 {
		return nil
	}
	return &ev
}

func (e *entry) inInterval(t int64) bool {
	return !e.spec.Bounded || (t >= e.spec.Start && t <= e.spec.End)
}

// Len returns the number of active subscriptions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Groups returns the number of shared-scoring groups currently active —
// subscriptions with the same canonical scorer count once.
func (r *Registry) Groups() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.groups)
}

// Prefix returns the committed row count the registry has observed through.
func (r *Registry) Prefix() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.prefix
}
