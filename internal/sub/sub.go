// Package sub maintains standing durable top-k queries over a live append
// stream — the "continuous top-k" serving mode of Vouzoukidou et al. that
// the ROADMAP targets. Clients register subscriptions (scorer, k, tau,
// optional interval filter); every append then yields per-subscription
// verdicts from a dedicated online monitor: an instant look-back Decision
// for the new record and delayed look-ahead Confirmations for past records
// whose windows closed.
//
// The registry shares per-append work across subscriptions: all
// subscriptions whose scorers have the same canonical key
// (score.CanonicalKey) form a group that scores each arrival exactly once,
// fanning the value out through monitor.ObserveScored. Subscriptions are
// keyed to the engine's absolute row count ("prefix"): every emitted event
// names the exact acknowledged prefix it corresponds to, so a consumer can
// reproduce any verdict bit-identically by re-running the equivalent
// durable query over that prefix.
//
// The registry is engine-agnostic on purpose: it consumes the committed
// append stream (Observe) and does not care whether rows land in a
// LiveEngine or a LiveShardedEngine, nor when shards seal or freeze —
// those only bump the engine's epoch, never reorder or drop committed
// rows, so monitor state carries across seals untouched.
package sub

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/monitor"
	"repro/internal/score"
)

// Spec describes one standing query.
type Spec struct {
	Scorer score.Scorer
	K      int
	Tau    int64

	// Bounded restricts pushed verdicts to records whose arrival time lies
	// in [Start, End]; the monitor still observes every append to keep its
	// windows exact.
	Bounded    bool
	Start, End int64

	// Decisions pushes the instant look-back verdict per append; Confirms
	// pushes the delayed look-ahead verdicts. At least one must be set.
	Decisions bool
	Confirms  bool
}

// Event is one batch of verdicts for one subscription, produced by a single
// append (or by Unsubscribe/Close, which flush truncated confirmations).
// Record IDs are absolute dataset row indices.
type Event struct {
	SubID uint64
	// Prefix is the engine's committed row count immediately after the
	// append this event describes.
	Prefix   int
	Decision *monitor.Decision
	Confirms []monitor.Confirmation
}

// Emit delivers one event to a subscriber. Called with the registry lock
// held, so implementations must not call back into the registry and should
// hand off quickly (enqueue, not write).
type Emit func(Event)

// Registry multiplexes many standing queries over one append stream.
type Registry struct {
	mu     sync.Mutex
	next   uint64
	prefix int
	subs   map[uint64]*entry
	groups map[string]*group // canonical scorer key → shared-scoring group
	closed bool
}

type group struct {
	scorer  score.Scorer
	members map[uint64]*entry
}

type entry struct {
	id   uint64
	spec Spec
	base int // absolute row index the monitor's local id 0 maps to
	mon  *monitor.Monitor
	emit Emit
	key  string // canonical scorer key; "" when unkeyed
}

// NewRegistry returns a registry attached at the given committed row count.
func NewRegistry(prefix int) *Registry {
	return &Registry{
		prefix: prefix,
		subs:   make(map[uint64]*entry),
		groups: make(map[string]*group),
	}
}

var (
	ErrClosed     = errors.New("sub: registry closed")
	ErrNotFound   = errors.New("sub: no such subscription")
	ErrNoVerdicts = errors.New("sub: subscription must request decisions or confirmations")
)

// Subscribe registers a standing query and returns its id. Events flow to
// emit from the next Observe on; the subscription's monitor starts at the
// current prefix, so verdicts are relative to arrivals from this point.
func (r *Registry) Subscribe(spec Spec, emit Emit) (uint64, error) {
	if !spec.Decisions && !spec.Confirms {
		return 0, ErrNoVerdicts
	}
	if spec.Bounded && spec.Start > spec.End {
		return 0, errors.New("sub: interval start must be <= end")
	}
	if emit == nil {
		return 0, errors.New("sub: emit must not be nil")
	}
	mon, err := monitor.New(spec.K, spec.Tau, spec.Scorer, monitor.Options{TrackAhead: spec.Confirms})
	if err != nil {
		return 0, fmt.Errorf("sub: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrClosed
	}
	r.next++
	e := &entry{id: r.next, spec: spec, base: r.prefix, mon: mon, emit: emit}
	if key, ok := score.CanonicalKey(spec.Scorer); ok {
		e.key = key
		g := r.groups[key]
		if g == nil {
			g = &group{scorer: spec.Scorer, members: make(map[uint64]*entry)}
			r.groups[key] = g
		}
		g.members[e.id] = e
	} else {
		// Unkeyed scorers score per subscription; park them in a private
		// group under an unshareable synthetic key.
		key := fmt.Sprintf("\x00unkeyed:%d", e.id)
		e.key = key
		r.groups[key] = &group{scorer: spec.Scorer, members: map[uint64]*entry{e.id: e}}
	}
	r.subs[e.id] = e
	return e.id, nil
}

// Unsubscribe drops a subscription. If it tracked confirmations, the still
// pending look-ahead candidates are flushed as one final event, marked
// Truncated — nothing observed refuted them, but their windows were cut
// short (monitor.Finish semantics).
func (r *Registry) Unsubscribe(id uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropLocked(id)
}

func (r *Registry) dropLocked(id uint64) error {
	e, ok := r.subs[id]
	if !ok {
		return ErrNotFound
	}
	delete(r.subs, id)
	if g := r.groups[e.key]; g != nil {
		delete(g.members, id)
		if len(g.members) == 0 {
			delete(r.groups, e.key)
		}
	}
	if final := e.finalEvent(r.prefix); final != nil {
		e.emit(*final)
	}
	return nil
}

// Close drops every subscription, flushing truncated confirmations.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for id := range r.subs {
		_ = r.dropLocked(id)
	}
}

// Observe ingests one committed append. The caller must present every
// committed row exactly once, in commit order; times are strictly
// increasing (enforced by the engines upstream and re-checked by each
// monitor).
func (r *Registry) Observe(t int64, attrs []float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	r.prefix++
	for _, g := range r.groups {
		sc := g.scorer.Score(attrs)
		for _, e := range g.members {
			dec, confs, err := e.mon.ObserveScored(t, sc)
			if err != nil {
				return fmt.Errorf("sub: subscription %d: %w", e.id, err)
			}
			if ev := e.event(r.prefix, t, dec, confs); ev != nil {
				e.emit(*ev)
			}
		}
	}
	return nil
}

// event assembles the filtered, id-translated event for one append, or nil
// when nothing passes the subscription's filters.
func (e *entry) event(prefix int, t int64, dec monitor.Decision, confs []monitor.Confirmation) *Event {
	ev := Event{SubID: e.id, Prefix: prefix}
	if e.spec.Decisions && e.inInterval(t) {
		dec.ID += e.base
		ev.Decision = &dec
	}
	if e.spec.Confirms {
		for _, c := range confs {
			if !e.inInterval(c.Time) {
				continue
			}
			c.ID += e.base
			ev.Confirms = append(ev.Confirms, c)
		}
	}
	if ev.Decision == nil && len(ev.Confirms) == 0 {
		return nil
	}
	return &ev
}

// finalEvent flushes the monitor's pending candidates on teardown, or nil
// if nothing was pending or confirmations were not requested.
func (e *entry) finalEvent(prefix int) *Event {
	if !e.spec.Confirms {
		return nil
	}
	ev := Event{SubID: e.id, Prefix: prefix}
	for _, c := range e.mon.Finish() {
		if !e.inInterval(c.Time) {
			continue
		}
		c.ID += e.base
		ev.Confirms = append(ev.Confirms, c)
	}
	if len(ev.Confirms) == 0 {
		return nil
	}
	return &ev
}

func (e *entry) inInterval(t int64) bool {
	return !e.spec.Bounded || (t >= e.spec.Start && t <= e.spec.End)
}

// Len returns the number of active subscriptions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Groups returns the number of shared-scoring groups currently active —
// subscriptions with the same canonical scorer count once.
func (r *Registry) Groups() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.groups)
}

// Prefix returns the committed row count the registry has observed through.
func (r *Registry) Prefix() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.prefix
}
