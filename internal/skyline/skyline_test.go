package skyline

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{2, 2}, []float64{1, 1}, true},
		{[]float64{2, 1}, []float64{1, 1}, true},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict dim
		{[]float64{2, 0}, []float64{1, 1}, false}, // incomparable
		{[]float64{1, 1}, []float64{2, 2}, false},
		{[]float64{3}, []float64{2}, true},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDominatesOrEqual(t *testing.T) {
	if !DominatesOrEqual([]float64{1, 1}, []float64{1, 1}) {
		t.Fatal("equal vectors must dominate-or-equal")
	}
	if DominatesOrEqual([]float64{1, 0}, []float64{1, 1}) {
		t.Fatal("smaller in one dim must not dominate-or-equal")
	}
}

func naiveSkyline(rows [][]float64, ids []int32) map[int32]bool {
	out := map[int32]bool{}
	for _, id := range ids {
		dominated := false
		for _, other := range ids {
			if other != id && Dominates(rows[other], rows[id]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out[id] = true
		}
	}
	return out
}

func randRows(rng *rand.Rand, n, d int, domain int) ([][]float64, []int32) {
	rows := make([][]float64, n)
	ids := make([]int32, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = float64(rng.Intn(domain))
		}
		rows[i] = row
		ids[i] = int32(i)
	}
	return rows, ids
}

func TestComputeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(120)
		d := 1 + rng.Intn(4)
		domain := 3 + rng.Intn(50) // small domains force duplicates
		rows, ids := randRows(rng, n, d, domain)
		got := Compute(Rows(rows), ids)
		want := naiveSkyline(rows, ids)
		if len(got) != len(want) {
			t.Fatalf("trial %d: skyline size %d want %d", trial, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("trial %d: %d not in naive skyline", trial, id)
			}
		}
	}
}

func TestComputeKeepsDuplicates(t *testing.T) {
	rows := [][]float64{{1, 2}, {1, 2}, {0, 0}}
	got := Compute(Rows(rows), []int32{0, 1, 2})
	if len(got) != 2 {
		t.Fatalf("duplicate maxima must both stay, got %v", got)
	}
}

func TestMergeMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(100)
		rows, ids := randRows(rng, n, 2, 20)
		mid := n / 2
		a := Compute(Rows(rows), ids[:mid])
		b := Compute(Rows(rows), ids[mid:])
		merged := Merge(Rows(rows), a, b)
		direct := Compute(Rows(rows), ids)
		sortIDs := func(s []int32) {
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		}
		sortIDs(merged)
		sortIDs(direct)
		if len(merged) != len(direct) {
			t.Fatalf("trial %d: merge %v direct %v", trial, merged, direct)
		}
		for i := range merged {
			if merged[i] != direct[i] {
				t.Fatalf("trial %d: merge %v direct %v", trial, merged, direct)
			}
		}
	}
}

func TestKSkybandOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(80)
		rows, ids := randRows(rng, n, 2, 10)
		for _, k := range []int{1, 2, 3, 5} {
			band := KSkyband(Rows(rows), ids, k)
			inBand := map[int32]bool{}
			for _, id := range band {
				inBand[id] = true
			}
			for _, id := range ids {
				doms := 0
				for _, other := range ids {
					if other != id && Dominates(rows[other], rows[id]) {
						doms++
					}
				}
				if (doms < k) != inBand[id] {
					t.Fatalf("trial %d k=%d id=%d: doms=%d inBand=%v", trial, k, id, doms, inBand[id])
				}
			}
		}
	}
}

func TestSkylandIsOneSkyband(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows, ids := randRows(rng, 100, 3, 8)
	sky := Compute(Rows(rows), ids)
	band := KSkyband(Rows(rows), ids, 1)
	if len(sky) != len(band) {
		t.Fatalf("skyline size %d != 1-skyband size %d", len(sky), len(band))
	}
}

// TestAnyDominatesExactness verifies the block-skip property: a block
// contains a dominator of p iff its skyline contains one.
func TestAnyDominatesExactness(t *testing.T) {
	f := func(raw [][3]uint8, px, py, pz uint8) bool {
		rows := make([][]float64, len(raw))
		ids := make([]int32, len(raw))
		for i, r := range raw {
			rows[i] = []float64{float64(r[0]), float64(r[1]), float64(r[2])}
			ids[i] = int32(i)
		}
		p := []float64{float64(px), float64(py), float64(pz)}
		sky := Compute(Rows(rows), ids)
		bySkyline := AnyDominates(Rows(rows), sky, p)
		byAll := AnyDominates(Rows(rows), ids, p)
		return bySkyline == byAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCountDominatorsLimit(t *testing.T) {
	rows := [][]float64{{5, 5}, {4, 4}, {3, 3}, {2, 2}}
	ids := []int32{0, 1, 2, 3}
	if got := CountDominators(Rows(rows), ids, []float64{1, 1}, 0); got != 4 {
		t.Fatalf("unlimited count=%d want 4", got)
	}
	if got := CountDominators(Rows(rows), ids, []float64{1, 1}, 2); got != 2 {
		t.Fatalf("limited count=%d want 2", got)
	}
}

func BenchmarkComputeIND1k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 1000)
	ids := make([]int32, 1000)
	for i := range rows {
		rows[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		ids[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(Rows(rows), ids)
	}
}
