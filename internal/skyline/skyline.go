// Package skyline implements the dominance, skyline (maxima), and k-skyband
// operators used as substrates by the range top-k index node summaries and
// the durable k-skyband candidate index (paper §IV-B).
//
// All operators use the "larger is better" convention: point a dominates
// point b when a is >= b in every dimension and > b in at least one. The
// k-skyband of a set is the subset of points dominated by fewer than k
// others (the skyline is the 1-skyband).
package skyline

// Dominates reports whether a dominates b: a >= b componentwise with strict
// inequality in at least one dimension. The slices must have equal length.
func Dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		switch {
		case a[i] < b[i]:
			return false
		case a[i] > b[i]:
			strict = true
		}
	}
	return strict
}

// DominatesOrEqual reports whether a >= b componentwise.
func DominatesOrEqual(a, b []float64) bool {
	for i := range a {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// Points abstracts an indexed point set so callers can run skyline operators
// directly over a data.Dataset, a slice of rows, or index-table tuples
// without copying.
type Points interface {
	// Point returns the attribute vector of the point with the given id.
	Point(id int32) []float64
}

// Rows adapts a [][]float64 to the Points interface; ids are row indices.
type Rows [][]float64

// Point implements Points.
func (r Rows) Point(id int32) []float64 { return r[id] }

// Compute returns the ids of the skyline (maxima) among ids. Duplicate
// coordinate vectors are all retained (none dominates its equal). The result
// preserves the relative order of ids. Runs the standard O(m^2) pairwise
// scan with the common "move current maxima forward" optimization, which is
// near-linear for independently distributed data.
func Compute(ps Points, ids []int32) []int32 {
	sky := make([]int32, 0, 8)
	for _, id := range ids {
		p := ps.Point(id)
		dominated := false
		keep := sky[:0]
		for _, sid := range sky {
			q := ps.Point(sid)
			if !dominated && Dominates(q, p) {
				dominated = true
				// p is out, but remaining skyline members all stay.
				keep = append(keep, sid)
				continue
			}
			if dominated || !Dominates(p, q) {
				keep = append(keep, sid)
			}
		}
		sky = keep
		if !dominated {
			sky = append(sky, id)
		}
	}
	return sky
}

// Merge returns the skyline of the union of two skylines a and b. Both
// inputs must themselves be skylines (mutually non-dominating); the result
// is a fresh slice.
func Merge(ps Points, a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	deadB := make([]bool, len(b))
	for _, ida := range a {
		pa := ps.Point(ida)
		dominated := false
		for j, idb := range b {
			if deadB[j] {
				continue
			}
			pb := ps.Point(idb)
			if Dominates(pb, pa) {
				dominated = true
				break
			}
			if Dominates(pa, pb) {
				deadB[j] = true
			}
		}
		if !dominated {
			out = append(out, ida)
		}
	}
	for j, idb := range b {
		if !deadB[j] {
			out = append(out, idb)
		}
	}
	return out
}

// KSkyband returns the ids among ids dominated by fewer than k other points
// of the set. k must be >= 1; the 1-skyband equals Compute's skyline up to
// ordering. O(m^2) pairwise; intended for oracle tests and small sets.
func KSkyband(ps Points, ids []int32, k int) []int32 {
	out := make([]int32, 0, len(ids))
	for _, id := range ids {
		p := ps.Point(id)
		dominators := 0
		for _, other := range ids {
			if other == id {
				continue
			}
			if Dominates(ps.Point(other), p) {
				dominators++
				if dominators >= k {
					break
				}
			}
		}
		if dominators < k {
			out = append(out, id)
		}
	}
	return out
}

// CountDominators returns the number of ids whose points dominate p, at most
// limit (0 means unlimited).
func CountDominators(ps Points, ids []int32, p []float64, limit int) int {
	n := 0
	for _, id := range ids {
		if Dominates(ps.Point(id), p) {
			n++
			if limit > 0 && n >= limit {
				return n
			}
		}
	}
	return n
}

// AnyDominates reports whether any of ids dominates p. Because every point
// of a set is dominated-or-equaled by some member of the set's skyline,
// calling this on a block's skyline answers "does any point of the block
// dominate p" exactly.
func AnyDominates(ps Points, ids []int32, p []float64) bool {
	for _, id := range ids {
		if Dominates(ps.Point(id), p) {
			return true
		}
	}
	return false
}
