package topk

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/expr"
	"repro/internal/score"
)

// specialsDS builds a dataset whose attribute array is seasoned with the
// IEEE specials (NaN, ±Inf, -0.0) so the gathered upper bounds are compared
// on the values where bit-for-bit equality is hardest.
func specialsDS(rng *rand.Rand, n, d int) *data.Dataset {
	times := make([]int64, n)
	rows := make([][]float64, n)
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0}
	t := int64(0)
	for i := 0; i < n; i++ {
		t += int64(1 + rng.Intn(3))
		times[i] = t
		row := make([]float64, d)
		for j := range row {
			if rng.Intn(10) == 0 {
				row[j] = specials[rng.Intn(len(specials))]
			} else {
				row[j] = rng.NormFloat64() * 20
			}
		}
		rows[i] = row
	}
	return data.MustNew(times, rows)
}

// upperBoundScorers enumerates one gather-capable scorer of every kind the
// descent can meet: each built-in plus a compiled expression.
func upperBoundScorers(t *testing.T, rng *rand.Rand, d int) []score.Scorer {
	t.Helper()
	w := make([]float64, d)
	pos := make([]float64, d)
	for i := range w {
		w[i] = rng.NormFloat64()
		pos[i] = 0.05 + rng.Float64()
	}
	lin, err := score.NewLinear(w)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := score.NewLinear(pos)
	if err != nil {
		t.Fatal(err)
	}
	combo, err := score.Log1pCombo(pos)
	if err != nil {
		t.Fatal(err)
	}
	cos, err := score.NewCosine(pos)
	if err != nil {
		t.Fatal(err)
	}
	single, err := score.NewSingle(d-1, d)
	if err != nil {
		t.Fatal(err)
	}
	src := "0.7*x0"
	if d > 1 {
		src = "0.7*x0 + 0.2*x1"
	}
	e, err := expr.Compile(src, expr.Options{Dims: d})
	if err != nil {
		t.Fatal(err)
	}
	return []score.Scorer{lin, mono, combo, cos, single, e}
}

// TestUpperBoundGatherMatchesScalar walks every node of several indexes and
// requires the gathered skyline upper bound to equal the scalar skyline loop
// bit-for-bit, for every built-in scorer and for compiled expressions, on
// datasets containing NaN and ±Inf attributes.
func TestUpperBoundGatherMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sc := GetScratch()
	defer PutScratch(sc)
	for trial := 0; trial < 12; trial++ {
		n := 60 + rng.Intn(700)
		d := 1 + rng.Intn(4)
		var ds *data.Dataset
		if trial%2 == 0 {
			ds = specialsDS(rng, n, d)
		} else {
			ds = randDS(rng, n, d, 5)
		}
		x := Build(ds, Options{LengthThreshold: 1 + rng.Intn(32), MaxNodeSkyline: 1 << 20})
		for _, s := range upperBoundScorers(t, rng, d) {
			bulk, ok := s.(score.BulkScorer)
			if !ok {
				t.Fatalf("%T must implement BulkScorer", s)
			}
			monotone := score.IsMonotone(s)
			for ni := range x.nodes {
				node := &x.nodes[ni]
				got := x.upperBound(s, monotone, bulk, sc, node)
				want := x.upperBound(s, monotone, nil, sc, node)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("trial %d %T node %d (skyline %d ids): gather %v != scalar %v",
						trial, s, ni, len(node.skyline), got, want)
				}
			}
		}
	}
}

// TestQueryGatherVsScalarScorer runs identical query workloads with the
// gather-capable scorer and a capability-stripped wrapper that keeps
// bounding and monotonicity (so pruning decisions match) and requires
// identical results — the end-to-end half of the gathered-descent guarantee.
type boundedScalar struct{ s score.Scorer }

func (w boundedScalar) Score(x []float64) float64 { return w.s.Score(x) }
func (w boundedScalar) Dims() int                 { return w.s.Dims() }
func (w boundedScalar) UpperBound(lo, hi []float64) float64 {
	return score.UpperBound(w.s, lo, hi)
}
func (w boundedScalar) IsMonotone() bool { return score.IsMonotone(w.s) }

// itemsEqualNaN is itemsEqual modulo NaN payload: NaN scores count as equal
// (every NaN orders identically), since block and scalar kernels may
// propagate different NaN payloads through commutative float ops.
func itemsEqualNaN(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
		if a[i].Score != b[i].Score && !(math.IsNaN(a[i].Score) && math.IsNaN(b[i].Score)) {
			return false
		}
	}
	return true
}

func TestQueryGatherVsScalarScorer(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 15; trial++ {
		n := 80 + rng.Intn(600)
		d := 1 + rng.Intn(3)
		ds := specialsDS(rng, n, d)
		x := Build(ds, Options{LengthThreshold: 1 + rng.Intn(24)})
		for _, s := range upperBoundScorers(t, rng, d) {
			for q := 0; q < 6; q++ {
				k := 1 + rng.Intn(10)
				lo := rng.Intn(n)
				hi := lo + rng.Intn(n-lo) + 1
				gather := x.QueryRange(s, k, lo, hi)
				scalar := x.QueryRange(boundedScalar{s}, k, lo, hi)
				if !itemsEqualNaN(gather, scalar) {
					t.Fatalf("trial %d %T k=%d [%d,%d):\n gather %v\n scalar %v",
						trial, s, k, lo, hi, gather, scalar)
				}
			}
		}
	}
}

// TestUpperBoundAll checks the root bound really bounds every record and
// that gather hits are counted on monotone descents.
func TestUpperBoundAll(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ds := randDS(rng, 900, 3, 0)
	x := Build(ds, Options{LengthThreshold: 16})
	s := score.MustLinear(0.2, 0.5, 0.3)
	ub := x.UpperBoundAll(s)
	for i := 0; i < ds.Len(); i++ {
		if v := s.Score(ds.Attrs(i)); v > ub {
			t.Fatalf("record %d scores %v above root bound %v", i, v, ub)
		}
	}

	sc := GetScratch()
	defer PutScratch(sc)
	sc.ResetCounters()
	var dst []Item
	dst = x.QueryRangeInto(s, 5, 0, ds.Len(), sc, dst)
	if len(dst) != 5 {
		t.Fatalf("got %d items, want 5", len(dst))
	}
	if sc.GatherHits() == 0 {
		t.Fatal("monotone descent with skylines recorded no gather hits")
	}
}
