package topk

import (
	"math/rand"
	"testing"

	"repro/internal/score"
)

func TestForestMatchesStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(900)
		d := 1 + rng.Intn(3)
		ds := randDS(rng, n, d, 4*(trial%2)) // alternate ties / no ties
		opts := Options{LengthThreshold: 16, MaxNodeSkyline: 16}
		idx := Build(ds, opts)
		f := NewForest(d, opts)
		for i := 0; i < n; i++ {
			if err := f.Append(ds.Time(i), ds.Attrs(i)); err != nil {
				t.Fatal(err)
			}
		}
		if f.Len() != n {
			t.Fatalf("forest Len=%d want %d", f.Len(), n)
		}
		s := linearFor(rng, d)
		lo, hi := ds.Span()
		for q := 0; q < 15; q++ {
			k := 1 + rng.Intn(6)
			t1 := lo + int64(rng.Intn(int(hi-lo)+1)) - 2
			t2 := t1 + int64(rng.Intn(int(hi-lo)+2))
			got := f.Query(s, k, t1, t2)
			want := idx.Query(s, k, t1, t2)
			if !itemsEqual(got, want) {
				t.Fatalf("trial %d n=%d k=%d [%d,%d]:\nforest %v\nstatic %v",
					trial, n, k, t1, t2, got, want)
			}
		}
	}
}

func TestForestAppendValidation(t *testing.T) {
	f := NewForest(2, Options{})
	if err := f.Append(1, []float64{1}); err == nil {
		t.Fatal("wrong dims must fail")
	}
	if err := f.Append(5, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(5, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing time must fail")
	}
	if err := f.Append(4, []float64{1, 2}); err == nil {
		t.Fatal("decreasing time must fail")
	}
}

func TestForestBinaryCounterShape(t *testing.T) {
	base := 8
	f := NewForest(1, Options{LengthThreshold: base})
	total := base * 11 // 11 full chunks
	for i := 0; i < total; i++ {
		if err := f.Append(int64(i+1), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// 11 = 1011b: expect trees of sizes 8*8, 2*8, 1*8 => 3 trees.
	if f.Trees() != 3 {
		t.Fatalf("Trees=%d want 3 (binary counter over 11 chunks)", f.Trees())
	}
	if f.Rebuilds() < 11 {
		t.Fatalf("Rebuilds=%d want >= 11", f.Rebuilds())
	}
}

func TestForestPendingBufferQueried(t *testing.T) {
	f := NewForest(1, Options{LengthThreshold: 64})
	for i := 0; i < 10; i++ { // all records still in the pending buffer
		if err := f.Append(int64(i+1), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := f.Query(score.MustLinear(1), 3, 1, 10)
	if len(got) != 3 || got[0].Score != 9 {
		t.Fatalf("pending-buffer query wrong: %v", got)
	}
}

func TestForestAttrsCopied(t *testing.T) {
	f := NewForest(1, Options{})
	row := []float64{7}
	if err := f.Append(1, row); err != nil {
		t.Fatal(err)
	}
	row[0] = 9
	if f.Attrs(0)[0] != 7 {
		t.Fatal("forest must copy appended attrs")
	}
}

func BenchmarkForestAppend(b *testing.B) {
	f := NewForest(2, Options{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Append(int64(i+1), []float64{rng.Float64(), rng.Float64()})
	}
}
