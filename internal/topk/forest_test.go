package topk

import (
	"math/rand"
	"testing"

	"repro/internal/score"
)

func TestForestMatchesStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(900)
		d := 1 + rng.Intn(3)
		ds := randDS(rng, n, d, 4*(trial%2)) // alternate ties / no ties
		opts := Options{LengthThreshold: 16, MaxNodeSkyline: 16}
		idx := Build(ds, opts)
		f := NewForest(d, opts)
		for i := 0; i < n; i++ {
			if err := f.Append(ds.Time(i), ds.Attrs(i)); err != nil {
				t.Fatal(err)
			}
		}
		if f.Len() != n {
			t.Fatalf("forest Len=%d want %d", f.Len(), n)
		}
		s := linearFor(rng, d)
		lo, hi := ds.Span()
		for q := 0; q < 15; q++ {
			k := 1 + rng.Intn(6)
			t1 := lo + int64(rng.Intn(int(hi-lo)+1)) - 2
			t2 := t1 + int64(rng.Intn(int(hi-lo)+2))
			got := f.Query(s, k, t1, t2)
			want := idx.Query(s, k, t1, t2)
			if !itemsEqual(got, want) {
				t.Fatalf("trial %d n=%d k=%d [%d,%d]:\nforest %v\nstatic %v",
					trial, n, k, t1, t2, got, want)
			}
		}
	}
}

func TestForestAppendValidation(t *testing.T) {
	f := NewForest(2, Options{})
	if err := f.Append(1, []float64{1}); err == nil {
		t.Fatal("wrong dims must fail")
	}
	if err := f.Append(5, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(5, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing time must fail")
	}
	if err := f.Append(4, []float64{1, 2}); err == nil {
		t.Fatal("decreasing time must fail")
	}
}

func TestForestBinaryCounterShape(t *testing.T) {
	base := 8
	f := NewForest(1, Options{LengthThreshold: base})
	total := base * 11 // 11 full chunks
	for i := 0; i < total; i++ {
		if err := f.Append(int64(i+1), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// 11 = 1011b: expect trees of sizes 8*8, 2*8, 1*8 => 3 trees.
	if f.Trees() != 3 {
		t.Fatalf("Trees=%d want 3 (binary counter over 11 chunks)", f.Trees())
	}
	if f.Rebuilds() < 11 {
		t.Fatalf("Rebuilds=%d want >= 11", f.Rebuilds())
	}
}

func TestForestPendingBufferQueried(t *testing.T) {
	f := NewForest(1, Options{LengthThreshold: 64})
	for i := 0; i < 10; i++ { // all records still in the pending buffer
		if err := f.Append(int64(i+1), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := f.Query(score.MustLinear(1), 3, 1, 10)
	if len(got) != 3 || got[0].Score != 9 {
		t.Fatalf("pending-buffer query wrong: %v", got)
	}
}

func TestForestAttrsCopied(t *testing.T) {
	f := NewForest(1, Options{})
	row := []float64{7}
	if err := f.Append(1, row); err != nil {
		t.Fatal(err)
	}
	row[0] = 9
	if f.Attrs(0)[0] != 7 {
		t.Fatal("forest must copy appended attrs")
	}
}

// TestForestRangeMatchesStatic checks the append-order QueryRange surface
// (the live engine's building-block contract) against a static index over the
// same records, including ranges that straddle tree boundaries and the
// pending buffer.
func TestForestRangeMatchesStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(900)
		d := 1 + rng.Intn(3)
		ds := randDS(rng, n, d, 4*(trial%2))
		opts := Options{LengthThreshold: 16, MaxNodeSkyline: 16}
		idx := Build(ds, opts)
		f := NewForest(d, opts)
		for i := 0; i < n; i++ {
			if err := f.Append(ds.Time(i), ds.Attrs(i)); err != nil {
				t.Fatal(err)
			}
		}
		s := linearFor(rng, d)
		sc := GetScratch()
		var dst []Item
		for q := 0; q < 25; q++ {
			k := 1 + rng.Intn(6)
			lo := rng.Intn(n + 1)
			hi := lo + rng.Intn(n-lo+1)
			dst = f.QueryRangeInto(s, k, lo, hi, sc, dst)
			want := idx.QueryRange(s, k, lo, hi)
			if !itemsEqual(dst, want) {
				t.Fatalf("trial %d n=%d k=%d [%d,%d):\nforest %v\nstatic %v",
					trial, n, k, lo, hi, dst, want)
			}
		}
		PutScratch(sc)
	}
}

// TestForestRebuildInvariants drives interleaved Append/Query traffic and
// checks the logarithmic method's structural invariants at every step: trees
// partition the committed prefix in ascending disjoint runs of strictly
// decreasing size, the buffer holds the remainder, queries never trigger
// rebuilds, and the amortized rebuild work stays within the O(log n) bound.
func TestForestRebuildInvariants(t *testing.T) {
	const base = 8
	f := NewForest(1, Options{LengthThreshold: base})
	s := score.MustLinear(1)
	total := base*21 + 3
	for i := 0; i < total; i++ {
		if err := f.Append(int64(i+1), []float64{float64(i % 7)}); err != nil {
			t.Fatal(err)
		}
		if i%13 == 0 {
			before := f.Rebuilds()
			_ = f.Query(s, 3, 1, int64(i+1))
			if f.Rebuilds() != before {
				t.Fatalf("query performed a rebuild at n=%d", i+1)
			}
		}
		if f.buffered() >= base {
			t.Fatalf("n=%d: %d records buffered, flush threshold is %d",
				f.Len(), f.buffered(), base)
		}
	}
	// Amortization: every record is (re)indexed at most ~log2(n/base)+1
	// times on this adversarially regular stream.
	n := f.Len()
	bound := 1
	for chunk := base; chunk < n; chunk *= 2 {
		bound++
	}
	if got := float64(f.IndexedRows()) / float64(n); got > float64(bound) {
		t.Fatalf("amortized rebuild work %.2f rows/append exceeds log bound %d", got, bound)
	}
	if f.Rebuilds() < total/base {
		t.Fatalf("Rebuilds=%d want >= %d (one per full chunk)", f.Rebuilds(), total/base)
	}
	// Tree sizes strictly decrease left to right (binary-counter shape).
	sizes := f.treeSizes()
	sum := 0
	for i, sz := range sizes {
		sum += sz
		if i > 0 && sizes[i-1] <= sz {
			t.Fatalf("tree sizes not strictly decreasing: %v", sizes)
		}
		if sz%base != 0 {
			t.Fatalf("tree size %d not a multiple of the chunk base %d", sz, base)
		}
	}
	if sum+f.buffered() != f.Len() {
		t.Fatalf("trees cover %d + buffer %d != Len %d", sum, f.buffered(), f.Len())
	}
}

// TestForestQueryZeroAllocs asserts the steady-state live probe criterion:
// with a warmed Scratch and reused dst, a forest fan-out probe — trees plus
// pending buffer — performs zero allocations.
func TestForestQueryZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	// 67 full chunks (1000011b => trees of 64, 2 and 1 chunks) plus a
	// 17-record pending buffer: the fan-out hits every merge shape.
	const n = 67*DefaultLengthThreshold + 17
	f := NewForest(2, Options{})
	tt := int64(0)
	for i := 0; i < n; i++ {
		tt += int64(1 + rng.Intn(3))
		if err := f.Append(tt, []float64{rng.Float64() * 100, rng.Float64() * 100}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Trees() < 2 || f.buffered() == 0 {
		t.Fatalf("want a multi-tree forest with a pending buffer, got %d trees %d buffered",
			f.Trees(), f.buffered())
	}
	s := score.MustLinear(0.3, 0.7)
	sc := GetScratch()
	defer PutScratch(sc)
	var dst []Item
	for i := 0; i < 10; i++ { // warm the buffers
		dst = f.QueryRangeInto(s, 10, i*128, n-i, sc, dst)
	}
	probes := 0
	allocs := testing.AllocsPerRun(200, func() {
		lo := (probes * 37) % (n / 2)
		dst = f.QueryRangeInto(s, 10, lo, lo+n/2, sc, dst)
		probes++
	})
	if allocs != 0 {
		t.Fatalf("steady-state forest probe allocates %.1f times, want 0", allocs)
	}
}

func BenchmarkForestAppend(b *testing.B) {
	f := NewForest(2, Options{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Append(int64(i+1), []float64{rng.Float64(), rng.Float64()})
	}
}

// TestForestSnapshotStable pins the append-stability contract of Snapshot:
// a view taken at prefix n answers exactly like a static index over those n
// records forever — across later appends, buffer flushes, and the tree merges
// they cascade (which pop and rewrite the parent's tree set in place).
func TestForestSnapshotStable(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(400)
		d := 1 + rng.Intn(3)
		total := n + 1 + rng.Intn(600) // appends continuing past the snapshot
		ds := randDS(rng, total, d, 4*(trial%2))
		opts := Options{LengthThreshold: 8, MaxNodeSkyline: 16}
		f := NewForest(d, opts)
		for i := 0; i < n; i++ {
			if err := f.Append(ds.Time(i), ds.Attrs(i)); err != nil {
				t.Fatal(err)
			}
		}
		view := f.Snapshot(n)
		for i := n; i < total; i++ {
			if err := f.Append(ds.Time(i), ds.Attrs(i)); err != nil {
				t.Fatal(err)
			}
		}
		if view.Len() != n {
			t.Fatalf("view grew: Len=%d want %d", view.Len(), n)
		}
		prefix := ds.Prefix(n)
		idx := Build(prefix, opts)
		s := linearFor(rng, d)
		lo, hi := ds.Span() // deliberately spans past the prefix end
		for q := 0; q < 12; q++ {
			k := 1 + rng.Intn(6)
			t1 := lo + int64(rng.Intn(int(hi-lo)+1)) - 2
			t2 := t1 + int64(rng.Intn(int(hi-lo)+2))
			got := view.Query(s, k, t1, t2)
			want := idx.Query(s, k, t1, t2)
			if !itemsEqual(got, want) {
				t.Fatalf("trial %d n=%d total=%d k=%d [%d,%d]:\nview   %v\nstatic %v",
					trial, n, total, k, t1, t2, got, want)
			}
		}
		// The pinned upper bound must bound every prefix record and be
		// attained by one (linear scorers admit a tight max).
		ub := view.UpperBoundAll(s)
		best := -1e300
		for i := 0; i < n; i++ {
			if v := s.Score(prefix.Attrs(i)); v > best {
				best = v
			}
		}
		if ub < best {
			t.Fatalf("trial %d: UpperBoundAll=%g below true max %g", trial, ub, best)
		}
	}
}

// TestForestSnapshotOldPrefix exercises snapshots taken at a length the
// forest has long grown past: merged trees straddling the prefix end must be
// clipped, not over-answer.
func TestForestSnapshotOldPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const total = 500
	ds := randDS(rng, total, 2, 0)
	opts := Options{LengthThreshold: 8}
	f := NewForest(2, opts)
	for i := 0; i < total; i++ {
		if err := f.Append(ds.Time(i), ds.Attrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := linearFor(rng, 2)
	for _, n := range []int{1, 7, 8, 9, 63, 64, 65, 200, total} {
		view := f.Snapshot(n)
		idx := Build(ds.Prefix(n), opts)
		lo, hi := ds.Span()
		for q := 0; q < 8; q++ {
			k := 1 + rng.Intn(5)
			t1 := lo + int64(rng.Intn(int(hi-lo)+1))
			t2 := t1 + int64(rng.Intn(int(hi-lo)+2))
			got := view.Query(s, k, t1, t2)
			want := idx.Query(s, k, t1, t2)
			if !itemsEqual(got, want) {
				t.Fatalf("n=%d k=%d [%d,%d]:\nview   %v\nstatic %v", n, k, t1, t2, got, want)
			}
		}
	}
}
