package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKHeapKeepsBestK(t *testing.T) {
	f := func(scoresRaw []uint8, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		items := make([]Item, len(scoresRaw))
		for i, s := range scoresRaw {
			items[i] = Item{ID: int32(i), Time: int64(i), Score: float64(s % 16)} // force ties
		}
		h := newKHeap(k, -1)
		for _, it := range items {
			h.offer(it)
		}
		got := h.sortedDesc()

		want := append([]Item(nil), items...)
		sort.Slice(want, func(i, j int) bool { return Better(want[i], want[j]) })
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestKHeapWouldImprove(t *testing.T) {
	h := newKHeap(2, -1)
	if !h.wouldImprove(0, 0) {
		t.Fatal("non-full heap always improvable")
	}
	h.offer(Item{ID: 1, Time: 10, Score: 5})
	h.offer(Item{ID: 2, Time: 20, Score: 7})
	// kth is (5, t=10).
	if h.wouldImprove(4, 100) {
		t.Fatal("lower score cannot improve")
	}
	if !h.wouldImprove(6, 0) {
		t.Fatal("higher score must improve")
	}
	if h.wouldImprove(5, 10) || h.wouldImprove(5, 5) {
		t.Fatal("equal score needs later time to improve")
	}
	if !h.wouldImprove(5, 11) {
		t.Fatal("equal score with later time must improve")
	}
}

func TestNodePQOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pq := nodePQ{}
	n := 300
	for i := 0; i < n; i++ {
		pq.push(pqEntry{node: int32(i), ub: float64(rng.Intn(10)), maxT: int64(rng.Intn(10))})
	}
	var prev *pqEntry
	for pq.len() > 0 {
		e := pq.pop()
		if prev != nil && pqBefore(e, *prev) {
			t.Fatalf("pq order violated: %+v after %+v", e, *prev)
		}
		cp := e
		prev = &cp
	}
}

func TestBetterTotalOrder(t *testing.T) {
	a := Item{ID: 1, Time: 5, Score: 2}
	b := Item{ID: 2, Time: 9, Score: 2}
	c := Item{ID: 3, Time: 1, Score: 3}
	if !Better(c, a) || !Better(c, b) {
		t.Fatal("higher score must rank first")
	}
	if !Better(b, a) || Better(a, b) {
		t.Fatal("equal score must prefer recency")
	}
	if Better(a, a) {
		t.Fatal("irreflexive")
	}
}
