package topk

import "sync"

// Scratch holds the reusable working memory of one range top-k probe: the
// k-heap backing, the branch-and-bound frontier, and the bulk-scoring column
// buffer. A single durable top-k evaluation issues hundreds of probes; by
// threading one Scratch through all of them (see package core) the probe hot
// path runs with zero steady-state allocations.
//
// A Scratch must not be shared by concurrent probes. Obtain one with
// GetScratch and return it with PutScratch, or embed a long-lived instance
// in a single-threaded caller.
type Scratch struct {
	heap   []Item    // k-heap item storage
	pq     []pqEntry // frontier priority-queue storage
	scores []float64 // bulk leaf-scan score buffer
	gather []float64 // skyline upper-bound gather score buffer

	// gatherHits counts tree-descent upper bounds answered through the
	// bulk ScoreGather path (vs scalar skyline loops and MBR bounds); the
	// perf snapshots record it to prove the gather path is exercised.
	gatherHits int64

	// Forest probes fan one query out over several per-chunk trees; they
	// need storage disjoint from the per-tree probe's heap/pq above so the
	// merged result survives the inner probes. See Forest.QueryRangeInto.
	fheap []Item // forest merge k-heap storage
	fbuf  []Item // forest per-tree probe result buffer
}

var scratchPool = sync.Pool{New: func() interface{} { return new(Scratch) }}

// GetScratch returns a Scratch from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns sc to the shared pool. The caller must not use sc
// afterwards.
func PutScratch(sc *Scratch) {
	if sc != nil {
		scratchPool.Put(sc)
	}
}

// scoreBuf returns a scratch buffer of length n for bulk leaf scoring.
func (sc *Scratch) scoreBuf(n int) []float64 {
	if cap(sc.scores) < n {
		sc.scores = make([]float64, n)
	}
	return sc.scores[:n]
}

// gatherBuf returns a scratch buffer of length n for skyline gather scoring.
// It is distinct from scoreBuf because upper bounds are computed while a
// leaf scan's score column may still be live in the caller.
func (sc *Scratch) gatherBuf(n int) []float64 {
	if cap(sc.gather) < n {
		sc.gather = make([]float64, n)
	}
	return sc.gather[:n]
}

// GatherHits returns the number of skyline upper bounds this Scratch has
// answered through the bulk ScoreGather path since ResetCounters.
func (sc *Scratch) GatherHits() int64 { return sc.gatherHits }

// ResetCounters zeroes the instrumentation counters (buffers are kept).
func (sc *Scratch) ResetCounters() { sc.gatherHits = 0 }
