package topk

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/data"
	"repro/internal/score"
)

func randDS(rng *rand.Rand, n, d int, intDomain int) *data.Dataset {
	times := make([]int64, n)
	rows := make([][]float64, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		t += int64(1 + rng.Intn(3))
		times[i] = t
		row := make([]float64, d)
		for j := range row {
			if intDomain > 0 {
				row[j] = float64(rng.Intn(intDomain))
			} else {
				row[j] = rng.Float64() * 50
			}
		}
		rows[i] = row
	}
	return data.MustNew(times, rows)
}

// naiveTopK implements Q(s, k, [t1,t2]) by sorting the window.
func naiveTopK(ds *data.Dataset, s score.Scorer, k int, t1, t2 int64) []Item {
	lo, hi := ds.IndexRange(t1, t2)
	items := make([]Item, 0, hi-lo)
	for i := lo; i < hi; i++ {
		items = append(items, Item{ID: int32(i), Time: ds.Time(i), Score: s.Score(ds.Attrs(i))})
	}
	sort.Slice(items, func(i, j int) bool { return Better(items[i], items[j]) })
	if len(items) > k {
		items = items[:k]
	}
	return items
}

func itemsEqual(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

func testAgainstNaive(t *testing.T, opts Options, scorerFor func(*rand.Rand, int) score.Scorer) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(600)
		d := 1 + rng.Intn(4)
		intDomain := 0
		if trial%2 == 0 {
			intDomain = 5 // force score ties
		}
		ds := randDS(rng, n, d, intDomain)
		idx := Build(ds, opts)
		s := scorerFor(rng, d)
		lo, hi := ds.Span()
		for q := 0; q < 12; q++ {
			k := 1 + rng.Intn(8)
			t1 := lo + int64(rng.Intn(int(hi-lo)+1)) - 3
			t2 := t1 + int64(rng.Intn(int(hi-lo)+2))
			got := idx.Query(s, k, t1, t2)
			want := naiveTopK(ds, s, k, t1, t2)
			if !itemsEqual(got, want) {
				t.Fatalf("trial %d q=%d n=%d d=%d k=%d [%d,%d]:\n got %v\nwant %v",
					trial, q, n, d, k, t1, t2, got, want)
			}
		}
	}
}

func linearFor(rng *rand.Rand, d int) score.Scorer {
	w := make([]float64, d)
	for i := range w {
		w[i] = rng.Float64()
	}
	return score.MustLinear(w...)
}

func TestQueryMatchesNaiveLinear(t *testing.T) {
	testAgainstNaive(t, Options{LengthThreshold: 8, MaxNodeSkyline: 8}, linearFor)
}

func TestQueryMatchesNaiveMBROnly(t *testing.T) {
	testAgainstNaive(t, Options{LengthThreshold: 16, MaxNodeSkyline: -1}, linearFor)
}

func TestQueryMatchesNaiveMixedSignWeights(t *testing.T) {
	testAgainstNaive(t, Options{LengthThreshold: 8}, func(rng *rand.Rand, d int) score.Scorer {
		w := make([]float64, d)
		for i := range w {
			w[i] = rng.Float64()*2 - 1 // non-monotone linear
		}
		return score.MustLinear(w...)
	})
}

func TestQueryMatchesNaiveCosine(t *testing.T) {
	testAgainstNaive(t, Options{LengthThreshold: 8}, func(rng *rand.Rand, d int) score.Scorer {
		w := make([]float64, d)
		for i := range w {
			w[i] = 0.1 + rng.Float64()
		}
		s, err := score.NewCosine(w)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestQueryMatchesNaiveUnboundedScorer(t *testing.T) {
	// A scorer without Bounder/MonotoneAware still yields correct results
	// (degenerating to a scan).
	type opaque struct{ score.Scorer }
	testAgainstNaive(t, Options{LengthThreshold: 8}, func(rng *rand.Rand, d int) score.Scorer {
		return opaque{linearFor(rng, d)}
	})
}

func TestTieBreakPrefersRecency(t *testing.T) {
	// Three equal scores: top-2 must be the two most recent.
	ds := data.MustNew(
		[]int64{1, 2, 3},
		[][]float64{{5}, {5}, {5}},
	)
	idx := Build(ds, Options{LengthThreshold: 1})
	got := idx.Query(score.MustLinear(1), 2, 1, 3)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 1 {
		t.Fatalf("tie-break wrong: %v", got)
	}
}

func TestQueryEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := randDS(rng, 50, 2, 0)
	idx := Build(ds, Options{})
	s := score.MustLinear(1, 1)
	if items := idx.Query(s, 0, 0, 100); items != nil {
		t.Fatal("k=0 must return nil")
	}
	lo, hi := ds.Span()
	if items := idx.Query(s, 3, hi+1, hi+100); items != nil {
		t.Fatal("empty window must return nil")
	}
	if items := idx.Query(s, 500, lo, hi); len(items) != ds.Len() {
		t.Fatalf("k>n must return all records, got %d", len(items))
	}
	if items := idx.Query(s, 3, 50, 10); items != nil {
		t.Fatal("inverted window must return nil")
	}
	single := idx.Query(s, 1, ds.Time(7), ds.Time(7))
	if len(single) != 1 || single[0].ID != 7 {
		t.Fatalf("point window: %v", single)
	}
}

func TestMember(t *testing.T) {
	ds := data.MustNew(
		[]int64{1, 2, 3, 4},
		[][]float64{{10}, {20}, {20}, {5}},
	)
	idx := Build(ds, Options{LengthThreshold: 1})
	s := score.MustLinear(1)
	// Record 3 (score 5): three records score strictly higher within [1,4],
	// so it is not in the top-3 but is in the top-4.
	if ok, _ := idx.Member(s, 3, 1, 4, 3); ok {
		t.Fatal("score 5 must not be top-3")
	}
	if ok, _ := idx.Member(s, 4, 1, 4, 3); !ok {
		t.Fatal("score 5 must be top-4")
	}
	// Record 1 (score 20, tied with record 2): fewer than 1 record is
	// strictly higher, so it is top-1 under the paper's definition.
	if ok, _ := idx.Member(s, 1, 1, 4, 1); !ok {
		t.Fatal("tied max must be top-1")
	}
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := randDS(rng, 1000, 2, 0)
	idx := Build(ds, Options{LengthThreshold: 64})
	st := idx.Stats()
	if st.Nodes < 15 {
		t.Fatalf("expected a real tree, got %d nodes", st.Nodes)
	}
	if st.SkylineNodes == 0 || st.SkylineEntries == 0 {
		t.Fatal("IND data must retain skyline summaries")
	}
	if st.MaxSkyline > DefaultMaxNodeSkyline {
		t.Fatalf("skyline cap violated: %d", st.MaxSkyline)
	}
}

func TestOptionsDefaults(t *testing.T) {
	ds := randDS(rand.New(rand.NewSource(4)), 10, 1, 0)
	idx := Build(ds, Options{})
	if got := idx.Options().LengthThreshold; got != DefaultLengthThreshold {
		t.Fatalf("LengthThreshold=%d", got)
	}
	if got := idx.Options().MaxNodeSkyline; got != DefaultMaxNodeSkyline {
		t.Fatalf("MaxNodeSkyline=%d", got)
	}
}

func BenchmarkBuildIND100k(b *testing.B) {
	ds := randDS(rand.New(rand.NewSource(1)), 100_000, 2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(ds, Options{})
	}
}

func BenchmarkQueryIND100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := randDS(rng, 100_000, 2, 0)
	idx := Build(ds, Options{})
	s := score.MustLinear(0.3, 0.7)
	lo, hi := ds.Span()
	span := hi - lo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2 := lo + rng.Int63n(span)
		idx.Query(s, 10, t2-span/10, t2)
	}
}

func TestQueryRangeClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := randDS(rng, 40, 2, 0)
	idx := Build(ds, Options{LengthThreshold: 4})
	s := score.MustLinear(1, 1)
	// Out-of-range bounds clamp rather than panic.
	if items := idx.QueryRange(s, 3, -10, 1000); len(items) != 3 {
		t.Fatalf("clamped range: %d items", len(items))
	}
	if items := idx.QueryRange(s, 3, 20, 20); items != nil {
		t.Fatal("empty range must return nil")
	}
	full := idx.QueryRange(s, 40, 0, 40)
	if len(full) != 40 {
		t.Fatalf("full range: %d items", len(full))
	}
	for i := 1; i < len(full); i++ {
		if Better(full[i], full[i-1]) {
			t.Fatal("results must be ordered")
		}
	}
}
