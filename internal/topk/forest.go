package topk

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/score"
)

// Forest is an appendable range top-k index built with the logarithmic
// method: records accumulate in a small buffer; full buffers become static
// trees, and equal-sized trees merge by rebuilding. Appends cost amortized
// O(log n) index work and queries fan out over O(log n) trees plus the
// buffer, providing the update support the paper assumes of the building
// block (§II). Records must arrive in strictly increasing time order, the
// natural regime for instant-stamped temporal data.
//
// Not safe for concurrent use.
type Forest struct {
	opts  Options
	base  int
	dims  int
	times []int64
	flat  []float64
	trees []chunkTree
	// buffered records are those in [bufStart, len(times)).
	bufStart int
	rebuilds int
}

type chunkTree struct {
	start, size int
	idx         *Index
}

// NewForest returns an empty forest for d-dimensional records.
func NewForest(d int, opts Options) *Forest {
	opts = opts.withDefaults()
	return &Forest{opts: opts, base: opts.LengthThreshold, dims: d}
}

// Len returns the number of appended records.
func (f *Forest) Len() int { return len(f.times) }

// Time returns the arrival time of record i.
func (f *Forest) Time(i int) int64 { return f.times[i] }

// Attrs returns the attribute vector of record i (aliases internal storage).
func (f *Forest) Attrs(i int) []float64 {
	return f.flat[i*f.dims : (i+1)*f.dims]
}

// Rebuilds returns the number of static tree (re)builds performed, an
// ablation metric for the amortized analysis.
func (f *Forest) Rebuilds() int { return f.rebuilds }

// Trees returns the current number of static trees in the forest.
func (f *Forest) Trees() int { return len(f.trees) }

// Append adds one record; attrs is copied.
func (f *Forest) Append(t int64, attrs []float64) error {
	if len(attrs) != f.dims {
		return fmt.Errorf("topk: append got %d attrs, want %d", len(attrs), f.dims)
	}
	if n := len(f.times); n > 0 && t <= f.times[n-1] {
		return fmt.Errorf("topk: append t=%d not after t=%d", t, f.times[len(f.times)-1])
	}
	f.times = append(f.times, t)
	f.flat = append(f.flat, attrs...)
	if len(f.times)-f.bufStart >= f.base {
		f.flush()
	}
	return nil
}

// flush turns the buffer into a tree and cascades equal-size merges.
func (f *Forest) flush() {
	start, size := f.bufStart, len(f.times)-f.bufStart
	f.bufStart = len(f.times)
	for len(f.trees) > 0 && f.trees[len(f.trees)-1].size == size {
		prev := f.trees[len(f.trees)-1]
		f.trees = f.trees[:len(f.trees)-1]
		start, size = prev.start, prev.size+size
	}
	f.trees = append(f.trees, chunkTree{start: start, size: size, idx: f.buildTree(start, size)})
	f.rebuilds++
}

func (f *Forest) buildTree(start, size int) *Index {
	d := f.dims
	ds, err := data.NewFlat(
		f.times[start:start+size:start+size],
		f.flat[start*d:(start+size)*d:(start+size)*d],
		d,
	)
	if err != nil {
		panic(err) // unreachable: forest appends maintain the invariants
	}
	return Build(ds, f.opts)
}

// Query returns up to k records with highest (score desc, time desc) rank
// among records with arrival time in [t1, t2], with IDs referring to append
// order.
func (f *Forest) Query(s score.Scorer, k int, t1, t2 int64) []Item {
	if k <= 0 || t1 > t2 {
		return nil
	}
	res := newKHeap(k, f.Len())
	for _, ct := range f.trees {
		for _, it := range ct.idx.Query(s, k, t1, t2) {
			it.ID += int32(ct.start)
			res.offer(it)
		}
	}
	for i := f.bufStart; i < len(f.times); i++ {
		if f.times[i] >= t1 && f.times[i] <= t2 {
			res.offer(Item{ID: int32(i), Time: f.times[i], Score: s.Score(f.Attrs(i))})
		}
	}
	return res.sortedDesc()
}
