package topk

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/score"
)

// Forest is an appendable range top-k index built with the logarithmic
// method: records accumulate in a small buffer; full buffers become static
// trees, and equal-sized trees merge by rebuilding. Appends cost amortized
// O(log n) index work and queries fan out over O(log n) trees plus the
// buffer, providing the update support the paper assumes of the building
// block (§II). Records must arrive in strictly increasing time order, the
// natural regime for instant-stamped temporal data.
//
// Storage is the appendable columnar tail of data.Dataset: every append goes
// through Dataset.AppendRow, so the attribute matrix stays one contiguous
// row-major array and each chunk tree is built over a zero-copy Slice view of
// it — tree probes run the same pooled-Scratch bulk-scoring path as a
// statically built Index. Forest implements the engine's Block and
// ScratchBlock contracts (ids address append order), so it can serve as the
// building block of a live engine directly.
//
// Appends are not safe for concurrent use; queries are read-only and may run
// concurrently with each other (not with Append).
type Forest struct {
	opts Options
	base int
	// tail is the growing columnar storage; chunk trees index zero-copy
	// prefix slices of it.
	tail  *data.Dataset
	trees []chunkTree
	// buffered records are those in [bufStart, tail.Len()).
	bufStart int
	rebuilds int
	// indexedRows counts every row (re)indexed by tree builds, the
	// amortization metric: indexedRows/Len is the average number of times a
	// record has been touched by a rebuild (O(log n) by the analysis).
	indexedRows int
}

type chunkTree struct {
	start, size int
	idx         *Index
}

// NewForest returns an empty forest for d-dimensional records.
func NewForest(d int, opts Options) *Forest {
	opts = opts.withDefaults()
	tail, err := data.NewAppendable(d, 0)
	if err != nil {
		panic(err) // unreachable: d >= 1 is checked by callers' constructors
	}
	return &Forest{opts: opts, base: opts.LengthThreshold, tail: tail}
}

// Len returns the number of appended records.
func (f *Forest) Len() int { return f.tail.Len() }

// Time returns the arrival time of record i.
func (f *Forest) Time(i int) int64 { return f.tail.Time(i) }

// Attrs returns the attribute vector of record i (aliases internal storage).
func (f *Forest) Attrs(i int) []float64 { return f.tail.Attrs(i) }

// Dataset returns the forest's growing backing storage. The committed prefix
// is immutable; use Prefix to snapshot a stable view.
func (f *Forest) Dataset() *data.Dataset { return f.tail }

// Rebuilds returns the number of static tree (re)builds performed, an
// ablation metric for the amortized analysis.
func (f *Forest) Rebuilds() int { return f.rebuilds }

// IndexedRows returns the total number of rows (re)indexed across all tree
// builds; divided by Len it is the average rebuild work per appended record
// (the amortization constant the logarithmic method bounds by O(log n)).
func (f *Forest) IndexedRows() int { return f.indexedRows }

// Trees returns the current number of static trees in the forest.
func (f *Forest) Trees() int { return len(f.trees) }

// buffered returns the number of records still awaiting their first tree.
func (f *Forest) buffered() int { return f.tail.Len() - f.bufStart }

// treeSizes lists the chunk-tree sizes in position order (test hook for the
// binary-counter shape invariant).
func (f *Forest) treeSizes() []int {
	sizes := make([]int, len(f.trees))
	for i, ct := range f.trees {
		sizes[i] = ct.size
	}
	return sizes
}

// Append adds one record; attrs is copied. Errors (dimension mismatch,
// non-increasing time) leave the forest unchanged.
func (f *Forest) Append(t int64, attrs []float64) error {
	if err := f.tail.AppendRow(t, attrs); err != nil {
		return fmt.Errorf("topk: %w", err)
	}
	if f.tail.Len()-f.bufStart >= f.base {
		f.flush()
	}
	return nil
}

// flush turns the buffer into a tree and cascades equal-size merges.
func (f *Forest) flush() {
	start, size := f.bufStart, f.tail.Len()-f.bufStart
	f.bufStart = f.tail.Len()
	for len(f.trees) > 0 && f.trees[len(f.trees)-1].size == size {
		prev := f.trees[len(f.trees)-1]
		f.trees = f.trees[:len(f.trees)-1]
		start, size = prev.start, prev.size+size
	}
	f.trees = append(f.trees, chunkTree{start: start, size: size, idx: f.buildTree(start, size)})
	f.rebuilds++
	f.indexedRows += size
}

func (f *Forest) buildTree(start, size int) *Index {
	ds := f.tail.Slice(start, start+size)
	if ds.Len() == 0 {
		panic("topk: empty chunk tree") // unreachable: flush only runs on full buffers
	}
	return Build(ds, f.opts)
}

// Snapshot returns an append-stable view of the forest's first n records
// (clamped to the current length). The view captures its own copy of the
// chunk-tree set and the buffered range, so later Appends — including flushes
// that pop and merge trees — are invisible to it: the view keeps answering
// exactly over records [0, n) for as long as it is held, with no lock
// required. Chunk trees are immutable once built and the columnar storage is
// prefix-stable, which is what makes the capture sound.
//
// Snapshot itself must not run concurrently with Append (callers serialize,
// see core.LiveEngine); the returned view's queries are read-only and safe
// for concurrent use with each other and with later Appends.
func (f *Forest) Snapshot(n int) *View {
	if n < 0 || n > f.tail.Len() {
		n = f.tail.Len()
	}
	v := &View{
		ds:       f.tail.Prefix(n),
		bufStart: min(f.bufStart, n),
	}
	for _, ct := range f.trees {
		if ct.start >= n {
			break // trees are position-ordered; the rest lie past the prefix
		}
		v.trees = append(v.trees, ct)
	}
	return v
}

// View is an append-stable prefix snapshot of a Forest (see Forest.Snapshot).
// It implements the same Block/ScratchBlock probe contract as the forest,
// pinned to the records committed at snapshot time.
type View struct {
	ds       *data.Dataset // prefix view of the storage, Len() == n
	trees    []chunkTree   // captured tree set (may straddle n; probes clip)
	bufStart int           // records [bufStart, Len()) are scanned unindexed
}

// Len returns the number of records the view covers.
func (v *View) Len() int { return v.ds.Len() }

// Dataset returns the view's stable prefix storage.
func (v *View) Dataset() *data.Dataset { return v.ds }

// Query returns up to k records with highest (score desc, time desc) rank
// among the view's records with arrival time in [t1, t2].
func (v *View) Query(s score.Scorer, k int, t1, t2 int64) []Item {
	sc := GetScratch()
	out := v.QueryInto(s, k, t1, t2, sc, nil)
	PutScratch(sc)
	return out
}

// QueryRange is Query over the half-open append-order index range [lo, hi).
func (v *View) QueryRange(s score.Scorer, k int, lo, hi int) []Item {
	sc := GetScratch()
	out := v.QueryRangeInto(s, k, lo, hi, sc, nil)
	PutScratch(sc)
	return out
}

// QueryInto is Query with caller-provided working memory.
func (v *View) QueryInto(s score.Scorer, k int, t1, t2 int64, sc *Scratch, dst []Item) []Item {
	lo, hi := v.ds.IndexRange(t1, t2)
	return v.QueryRangeInto(s, k, lo, hi, sc, dst)
}

// QueryRangeInto is QueryRange with caller-provided working memory; see
// Forest.QueryRangeInto for the Scratch/dst contract.
func (v *View) QueryRangeInto(s score.Scorer, k int, lo, hi int, sc *Scratch, dst []Item) []Item {
	return forestQueryRange(v.ds, v.trees, v.bufStart, s, k, lo, hi, sc, dst)
}

// UpperBoundAll returns a valid upper bound of the scorer over every record
// the view covers: the max of the captured chunk-tree root bounds and a bulk
// scan of the still-unindexed buffered suffix. The sharded engine's
// cross-shard pruning uses it for the mutable tail shard; because a View is
// pinned at snapshot time, the bound can never go stale under later appends —
// a fresh snapshot (and with it a fresh bound) is taken per query epoch.
func (v *View) UpperBoundAll(s score.Scorer) float64 {
	n := v.ds.Len()
	best := math.Inf(-1)
	for _, ct := range v.trees {
		if ct.start >= n {
			break
		}
		if ct.start+ct.size <= n {
			if ub := ct.idx.UpperBoundAll(s); ub > best {
				best = ub
			}
			continue
		}
		// A tree straddling the prefix end (merged after the snapshot point):
		// bound just its in-prefix rows by scoring them directly.
		if ub := maxScoreRange(v.ds, s, ct.start, n); ub > best {
			best = ub
		}
	}
	if ub := maxScoreRange(v.ds, s, max(v.bufStart, treesEnd(v.trees, n)), n); ub > best {
		best = ub
	}
	return best
}

// treesEnd returns the first record index not covered by the captured trees,
// clamped to n.
func treesEnd(trees []chunkTree, n int) int {
	if len(trees) == 0 {
		return 0
	}
	last := trees[len(trees)-1]
	return min(last.start+last.size, n)
}

// maxScoreRange bulk-scores records [lo, hi) of ds and returns the maximum.
func maxScoreRange(ds *data.Dataset, s score.Scorer, lo, hi int) float64 {
	best := math.Inf(-1)
	if lo >= hi {
		return best
	}
	flat, d := ds.FlatAttrs(), ds.Dims()
	sc := GetScratch()
	buf := sc.scoreBuf(hi - lo)
	if bulk, ok := s.(score.BulkScorer); ok {
		bulk.ScoreRange(buf, flat, d, lo, hi)
	} else {
		for i := lo; i < hi; i++ {
			buf[i-lo] = s.Score(flat[i*d : (i+1)*d : (i+1)*d])
		}
	}
	for _, v := range buf {
		if v > best {
			best = v
		}
	}
	PutScratch(sc)
	return best
}

// Query returns up to k records with highest (score desc, time desc) rank
// among records with arrival time in [t1, t2], with IDs referring to append
// order.
func (f *Forest) Query(s score.Scorer, k int, t1, t2 int64) []Item {
	sc := GetScratch()
	out := f.QueryInto(s, k, t1, t2, sc, nil)
	PutScratch(sc)
	return out
}

// QueryRange is Query over the half-open append-order index range [lo, hi).
func (f *Forest) QueryRange(s score.Scorer, k int, lo, hi int) []Item {
	sc := GetScratch()
	out := f.QueryRangeInto(s, k, lo, hi, sc, nil)
	PutScratch(sc)
	return out
}

// QueryInto is Query with caller-provided working memory; see
// Index.QueryInto for the Scratch/dst contract.
func (f *Forest) QueryInto(s score.Scorer, k int, t1, t2 int64, sc *Scratch, dst []Item) []Item {
	lo, hi := f.tail.IndexRange(t1, t2)
	return f.QueryRangeInto(s, k, lo, hi, sc, dst)
}

// QueryRangeInto is QueryRange with caller-provided working memory: each
// overlapping chunk tree is probed through its own scratch-backed bulk-scoring
// path, the still-buffered tail is bulk-scored directly, and the per-tree
// results merge in a k-heap living in sc. With a warmed Scratch and a reused
// dst the whole fan-out performs zero allocations — the steady-state live
// query path.
func (f *Forest) QueryRangeInto(s score.Scorer, k int, lo, hi int, sc *Scratch, dst []Item) []Item {
	return forestQueryRange(f.tail, f.trees, f.bufStart, s, k, lo, hi, sc, dst)
}

// forestQueryRange is the shared probe core of Forest and View: trees and
// bufStart describe an indexed prefix of ds ([bufStart, ds.Len()) is scanned
// unindexed); the range is clamped to ds, so a View's prefix storage pins hi
// regardless of how far the parent forest has grown since the snapshot.
func forestQueryRange(ds *data.Dataset, trees []chunkTree, bufStart int, s score.Scorer, k, lo, hi int, sc *Scratch, dst []Item) []Item {
	n := ds.Len()
	if hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	if k <= 0 || lo >= hi {
		return dst[:0]
	}
	res := kHeap{k: k, items: sc.fheap[:0]}
	for _, ct := range trees {
		clo, chi := ct.start, ct.start+ct.size
		if clo < lo {
			clo = lo
		}
		if chi > hi {
			chi = hi
		}
		if clo >= chi {
			continue
		}
		items := ct.idx.QueryRangeInto(s, k, clo-ct.start, chi-ct.start, sc, sc.fbuf[:0])
		for _, it := range items {
			it.ID += int32(ct.start)
			res.offer(it)
		}
		sc.fbuf = items[:0]
	}
	// Bulk-score the clipped still-buffered suffix in one stripe.
	if blo, bhi := max(bufStart, lo), hi; blo < bhi {
		times := ds.Times()
		flat := ds.FlatAttrs()
		d := ds.Dims()
		buf := sc.scoreBuf(bhi - blo)
		if bulk, ok := s.(score.BulkScorer); ok {
			bulk.ScoreRange(buf, flat, d, blo, bhi)
		} else {
			for i := blo; i < bhi; i++ {
				buf[i-blo] = s.Score(flat[i*d : (i+1)*d : (i+1)*d])
			}
		}
		for i := blo; i < bhi; i++ {
			res.offer(Item{ID: int32(i), Time: times[i], Score: buf[i-blo]})
		}
	}
	out := append(dst[:0], res.sortedDesc()...)
	sc.fheap = res.items[:0]
	return out
}
