// Package topk implements the paper's range top-k building block (§II,
// Appendix A): an index over a time-ordered dataset answering preference
// top-k queries Q(u, k, W) restricted to a time window W.
//
// The index is a static balanced binary tree over arrival order. Each node
// summarizes its span with an axis-aligned bounding box (MBR) and, up to a
// configurable size cap, the skyline of its span (Algorithm 4). A query runs
// best-first branch-and-bound over nodes ordered by an upper bound of the
// node's maximum score, descending until spans fall below LengthThreshold
// and scanning those directly (Algorithm 5).
//
// Results are ordered by (score desc, arrival time desc). The recency
// tie-break is part of the contract: the durable top-k algorithms rely on it
// for hop safety and blocking correctness under score ties.
package topk

import (
	"math"

	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/skyline"
)

// DefaultLengthThreshold mirrors the paper's LENGTH_THRESHOLD constant.
const DefaultLengthThreshold = 128

// DefaultMaxNodeSkyline caps the per-node skyline size; nodes whose skyline
// exceeds the cap fall back to MBR-only upper bounds. The cap keeps index
// construction near-linear on anti-correlated data, where span skylines can
// degenerate to the whole span.
const DefaultMaxNodeSkyline = 64

// Options configures index construction.
type Options struct {
	// LengthThreshold is the span size below which nodes become scanned
	// leaves. Zero selects DefaultLengthThreshold.
	LengthThreshold int
	// MaxNodeSkyline caps stored skyline sizes; larger skylines are dropped
	// in favour of the node MBR. Zero selects DefaultMaxNodeSkyline;
	// negative disables skyline summaries entirely (MBR-only index).
	MaxNodeSkyline int
}

func (o Options) withDefaults() Options {
	if o.LengthThreshold == 0 {
		o.LengthThreshold = DefaultLengthThreshold
	}
	if o.LengthThreshold < 1 {
		o.LengthThreshold = 1
	}
	if o.MaxNodeSkyline == 0 {
		o.MaxNodeSkyline = DefaultMaxNodeSkyline
	}
	return o
}

// Item is one record of a top-k result.
type Item struct {
	ID    int32   // record index in the dataset
	Time  int64   // arrival time
	Score float64 // score under the query's scorer
}

// Better reports whether a ranks strictly before b under the total order
// (score desc, arrival time desc).
func Better(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Time > b.Time
}

type node struct {
	lo, hi      int32 // record index span [lo, hi)
	left, right int32 // children, -1 for scanned leaves
	skyline     []int32
	mbrLo       []float64
	mbrHi       []float64
}

// Index is an immutable range top-k index over one dataset. Safe for
// concurrent queries.
type Index struct {
	ds    *data.Dataset
	opts  Options
	nodes []node
	root  int32
	// Hot-loop caches of the dataset's columnar storage: leaf scans read
	// times and the flat row-major attribute array directly instead of
	// going through per-record accessors.
	times []int64
	flat  []float64
	dims  int
	// pointsAdapter lets skyline operators address records by id.
	pts dsPoints
}

type dsPoints struct{ ds *data.Dataset }

func (p dsPoints) Point(id int32) []float64 { return p.ds.Attrs(int(id)) }

// Build constructs the index in O(n log n) time (subject to the skyline cap)
// and O(n) space.
func Build(ds *data.Dataset, opts Options) *Index {
	opts = opts.withDefaults()
	x := &Index{
		ds: ds, opts: opts, pts: dsPoints{ds},
		times: ds.Times(), flat: ds.FlatAttrs(), dims: ds.Dims(),
	}
	est := 2*ds.Len()/opts.LengthThreshold + 2
	x.nodes = make([]node, 0, est)
	x.root = x.build(0, int32(ds.Len()))
	return x
}

// Dataset returns the indexed dataset.
func (x *Index) Dataset() *data.Dataset { return x.ds }

// Options returns the construction options after defaulting.
func (x *Index) Options() Options { return x.opts }

func (x *Index) build(lo, hi int32) int32 {
	id := int32(len(x.nodes))
	x.nodes = append(x.nodes, node{lo: lo, hi: hi, left: -1, right: -1})
	d := x.ds.Dims()
	if int(hi-lo) <= x.opts.LengthThreshold {
		mbrLo, mbrHi := x.spanMBR(lo, hi)
		sky := x.spanSkyline(lo, hi)
		n := &x.nodes[id]
		n.mbrLo, n.mbrHi, n.skyline = mbrLo, mbrHi, sky
		return id
	}
	mid := lo + (hi-lo)/2
	left := x.build(lo, mid)
	right := x.build(mid, hi)
	// Merge child summaries bottom-up (Algorithm 4).
	l, r := &x.nodes[left], &x.nodes[right]
	mbrLo := make([]float64, d)
	mbrHi := make([]float64, d)
	for j := 0; j < d; j++ {
		mbrLo[j] = math.Min(l.mbrLo[j], r.mbrLo[j])
		mbrHi[j] = math.Max(l.mbrHi[j], r.mbrHi[j])
	}
	var sky []int32
	if x.opts.MaxNodeSkyline > 0 && l.skyline != nil && r.skyline != nil {
		sky = skyline.Merge(x.pts, l.skyline, r.skyline)
		if len(sky) > x.opts.MaxNodeSkyline {
			sky = nil
		}
	}
	n := &x.nodes[id]
	n.left, n.right = left, right
	n.mbrLo, n.mbrHi, n.skyline = mbrLo, mbrHi, sky
	return id
}

func (x *Index) spanMBR(lo, hi int32) (mbrLo, mbrHi []float64) {
	d := x.ds.Dims()
	mbrLo = make([]float64, d)
	mbrHi = make([]float64, d)
	copy(mbrLo, x.ds.Attrs(int(lo)))
	copy(mbrHi, x.ds.Attrs(int(lo)))
	for i := lo + 1; i < hi; i++ {
		row := x.ds.Attrs(int(i))
		for j := 0; j < d; j++ {
			if row[j] < mbrLo[j] {
				mbrLo[j] = row[j]
			}
			if row[j] > mbrHi[j] {
				mbrHi[j] = row[j]
			}
		}
	}
	return mbrLo, mbrHi
}

func (x *Index) spanSkyline(lo, hi int32) []int32 {
	if x.opts.MaxNodeSkyline <= 0 {
		return nil
	}
	ids := make([]int32, 0, hi-lo)
	for i := lo; i < hi; i++ {
		ids = append(ids, i)
	}
	sky := skyline.Compute(x.pts, ids)
	if len(sky) > x.opts.MaxNodeSkyline {
		return nil
	}
	return sky
}

// upperBound returns a valid upper bound of the scorer over the node's span.
// Monotone scorers use the skyline maximum when available (tighter); all
// scorers fall back to the MBR bound. Skyline ids are bulk-scored through
// sc's gather buffer when the scorer has a gather kernel, so the descent —
// like the leaf scan — runs without per-record interface dispatch; the
// scalar loop repeats the same scores in the same order, so both paths
// produce bit-for-bit identical bounds.
func (x *Index) upperBound(s score.Scorer, monotone bool, bulk score.BulkScorer, sc *Scratch, n *node) float64 {
	if monotone && n.skyline != nil {
		best := math.Inf(-1)
		if bulk != nil {
			buf := sc.gatherBuf(len(n.skyline))
			bulk.ScoreGather(buf, x.flat, x.dims, n.skyline)
			sc.gatherHits++
			for _, v := range buf {
				if v > best {
					best = v
				}
			}
			return best
		}
		d := x.dims
		for _, id := range n.skyline {
			i := int(id)
			if v := s.Score(x.flat[i*d : (i+1)*d : (i+1)*d]); v > best {
				best = v
			}
		}
		return best
	}
	return score.UpperBound(s, n.mbrLo, n.mbrHi)
}

// UpperBoundAll returns a valid upper bound of the scorer over every indexed
// record (the root node's bound). The sharded engine uses it to prune whole
// shards from cross-shard strictly-higher-count probes: a shard whose global
// bound does not exceed the reference score cannot contribute.
func (x *Index) UpperBoundAll(s score.Scorer) float64 {
	if len(x.nodes) == 0 || x.ds.Len() == 0 {
		return math.Inf(-1)
	}
	sc := GetScratch()
	bulk, _ := s.(score.BulkScorer)
	ub := x.upperBound(s, score.IsMonotone(s), bulk, sc, &x.nodes[x.root])
	PutScratch(sc)
	return ub
}

// Query returns up to k records with the highest scores among records with
// arrival time in the closed window [t1, t2], ordered by (score desc, time
// desc). Returns nil when the window is empty or k <= 0.
func (x *Index) Query(s score.Scorer, k int, t1, t2 int64) []Item {
	lo, hi := x.ds.IndexRange(t1, t2)
	return x.QueryRange(s, k, lo, hi)
}

// QueryRange is Query over the half-open record index range [lo, hi).
func (x *Index) QueryRange(s score.Scorer, k int, lo, hi int) []Item {
	sc := GetScratch()
	out := x.QueryRangeInto(s, k, lo, hi, sc, nil)
	PutScratch(sc)
	return out
}

// QueryInto is Query with caller-provided working memory: the probe runs on
// sc's buffers and the result is appended to dst[:0] (pass nil to allocate).
// Results share dst's backing array; they remain valid after further probes
// with the same Scratch as long as the same dst is not reused.
func (x *Index) QueryInto(s score.Scorer, k int, t1, t2 int64, sc *Scratch, dst []Item) []Item {
	lo, hi := x.ds.IndexRange(t1, t2)
	return x.QueryRangeInto(s, k, lo, hi, sc, dst)
}

// QueryRangeInto is QueryRange with caller-provided working memory; see
// QueryInto. With a warmed Scratch and a reused dst the probe performs zero
// allocations.
func (x *Index) QueryRangeInto(s score.Scorer, k int, lo, hi int, sc *Scratch, dst []Item) []Item {
	if hi > len(x.times) {
		hi = len(x.times)
	}
	if lo < 0 {
		lo = 0
	}
	if k <= 0 || lo >= hi {
		return dst[:0]
	}
	monotone := score.IsMonotone(s)
	bulk, hasBulk := s.(score.BulkScorer)
	res := kHeap{k: k, items: sc.heap[:0]}
	pq := nodePQ{es: sc.pq[:0]}
	pq.push(pqEntry{node: x.root, ub: math.Inf(1), maxT: x.times[hi-1]})
	for pq.len() > 0 {
		e := pq.pop()
		if !res.wouldImprove(e.ub, e.maxT) {
			break // lexicographic PQ order: nothing left can improve
		}
		n := &x.nodes[e.node]
		clo, chi := maxi32(n.lo, int32(lo)), mini32(n.hi, int32(hi))
		if clo >= chi {
			continue
		}
		if n.left < 0 || int(chi-clo) <= x.opts.LengthThreshold {
			// Leaf or small clipped span: bulk-score the whole clipped span
			// into the scratch column, then merge into the k-heap.
			span := int(chi - clo)
			buf := sc.scoreBuf(span)
			if hasBulk {
				bulk.ScoreRange(buf, x.flat, x.dims, int(clo), int(chi))
			} else {
				d := x.dims
				for i := int(clo); i < int(chi); i++ {
					buf[i-int(clo)] = s.Score(x.flat[i*d : (i+1)*d : (i+1)*d])
				}
			}
			for i := 0; i < span; i++ {
				res.offer(Item{ID: clo + int32(i), Time: x.times[int(clo)+i], Score: buf[i]})
			}
			continue
		}
		for _, c := range [2]int32{n.left, n.right} {
			cn := &x.nodes[c]
			cclo, cchi := maxi32(cn.lo, int32(lo)), mini32(cn.hi, int32(hi))
			if cclo >= cchi {
				continue
			}
			ub := x.upperBound(s, monotone, bulk, sc, cn)
			maxT := x.times[cchi-1]
			if res.wouldImprove(ub, maxT) {
				pq.push(pqEntry{node: c, ub: ub, maxT: maxT})
			}
		}
	}
	out := append(dst[:0], res.sortedDesc()...)
	// Return grown buffers to the scratch for the next probe.
	sc.heap = res.items[:0]
	sc.pq = pq.es[:0]
	return out
}

// Member reports whether record id is in the top-k of the closed time window
// [t1, t2] under the paper's definition: fewer than k records in the window
// have a strictly higher score. The record's own time must lie in the
// window. It also returns the top-k items of the window (the second result
// the durable algorithms need anyway).
func (x *Index) Member(s score.Scorer, k int, t1, t2 int64, id int32) (bool, []Item) {
	items := x.Query(s, k, t1, t2)
	if len(items) < k {
		return true, items
	}
	return s.Score(x.ds.Attrs(int(id))) >= items[k-1].Score, items
}

// Stats describes a built index.
type Stats struct {
	Nodes          int
	SkylineNodes   int // nodes that retained a skyline summary
	SkylineEntries int
	MaxSkyline     int
}

// Stats returns summary statistics of the index structure.
func (x *Index) Stats() Stats {
	var st Stats
	st.Nodes = len(x.nodes)
	for i := range x.nodes {
		if sk := x.nodes[i].skyline; sk != nil {
			st.SkylineNodes++
			st.SkylineEntries += len(sk)
			if len(sk) > st.MaxSkyline {
				st.MaxSkyline = len(sk)
			}
		}
	}
	return st
}

func maxi32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func mini32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
