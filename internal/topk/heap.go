package topk

// kHeap keeps the k best items under the (score desc, time desc) order. It
// is a binary min-heap whose root is the current k-th best item, so an
// incoming candidate only enters when it beats the root. The item storage is
// caller-provided (usually from a Scratch), so steady-state probes allocate
// nothing.
type kHeap struct {
	k     int
	items []Item
}

// newKHeap allocates a standalone heap for k results; capHint bounds the
// initial capacity (pass the number of available records so huge k values
// don't over-allocate).
func newKHeap(k, capHint int) *kHeap {
	if capHint > k || capHint < 0 {
		capHint = k
	}
	return &kHeap{k: k, items: make([]Item, 0, capHint)}
}

// worse is the heap order: a sinks below b when a ranks after b.
func worse(a, b Item) bool { return Better(b, a) }

// wouldImprove reports whether a hypothetical item with the given score
// upper bound and maximum possible arrival time could enter the heap.
func (h *kHeap) wouldImprove(ubScore float64, maxTime int64) bool {
	if len(h.items) < h.k {
		return true
	}
	kth := h.items[0]
	if ubScore != kth.Score {
		return ubScore > kth.Score
	}
	return maxTime > kth.Time
}

// offer inserts the item if it belongs to the current top-k.
func (h *kHeap) offer(it Item) {
	if len(h.items) < h.k {
		h.items = append(h.items, it)
		h.up(len(h.items) - 1)
		return
	}
	if !Better(it, h.items[0]) {
		return
	}
	h.items[0] = it
	siftDownItems(h.items, 0)
}

func (h *kHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// siftDownItems restores the min-heap property of items from position i.
func siftDownItems(items []Item, i int) {
	n := len(items)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && worse(items[l], items[least]) {
			least = l
		}
		if r < n && worse(items[r], items[least]) {
			least = r
		}
		if least == i {
			return
		}
		items[i], items[least] = items[least], items[i]
		i = least
	}
}

// sortedDesc reorders the collected items best-first in place and returns
// them. The items form a min-heap (root = worst), so a plain heapsort —
// repeatedly swapping the root behind the shrinking heap — leaves the slice
// in descending rank order without the sort.Slice closure allocations.
func (h *kHeap) sortedDesc() []Item {
	items := h.items
	for n := len(items) - 1; n > 0; n-- {
		items[0], items[n] = items[n], items[0]
		siftDownItems(items[:n], 0)
	}
	return items
}

// pqEntry is a branch-and-bound frontier node keyed by (ub desc, maxT desc).
type pqEntry struct {
	node int32
	ub   float64
	maxT int64
}

func pqBefore(a, b pqEntry) bool {
	if a.ub != b.ub {
		return a.ub > b.ub
	}
	return a.maxT > b.maxT
}

// nodePQ is a max-heap of frontier entries over caller-provided storage.
type nodePQ struct {
	es []pqEntry
}

func (q *nodePQ) len() int { return len(q.es) }

func (q *nodePQ) push(e pqEntry) {
	q.es = append(q.es, e)
	i := len(q.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pqBefore(q.es[i], q.es[parent]) {
			break
		}
		q.es[i], q.es[parent] = q.es[parent], q.es[i]
		i = parent
	}
}

func (q *nodePQ) pop() pqEntry {
	top := q.es[0]
	last := len(q.es) - 1
	q.es[0] = q.es[last]
	q.es = q.es[:last]
	n := len(q.es)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && pqBefore(q.es[l], q.es[best]) {
			best = l
		}
		if r < n && pqBefore(q.es[r], q.es[best]) {
			best = r
		}
		if best == i {
			break
		}
		q.es[i], q.es[best] = q.es[best], q.es[i]
		i = best
	}
	return top
}
