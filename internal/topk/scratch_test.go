package topk

import (
	"math/rand"
	"testing"

	"repro/internal/score"
)

// scalarOnly hides BulkScorer (and every other optional capability except
// what it re-declares), forcing leaf scans down the per-record path.
type scalarOnly struct{ s score.Scorer }

func (w scalarOnly) Score(x []float64) float64 { return w.s.Score(x) }
func (w scalarOnly) Dims() int                 { return w.s.Dims() }

// TestBulkLeafScanMatchesScalar runs identical query workloads through the
// bulk-scored and scalar-scored leaf paths and requires identical results —
// the QueryRange half of the refactor's differential guarantee.
func TestBulkLeafScanMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 50 + rng.Intn(800)
		d := 1 + rng.Intn(4)
		ds := randDS(rng, n, d, 6) // small int domain forces ties
		idx := Build(ds, Options{LengthThreshold: 1 + rng.Intn(32)})
		w := make([]float64, d)
		for i := range w {
			w[i] = rng.Float64()*2 - 1
		}
		s := score.MustLinear(w...)
		for q := 0; q < 15; q++ {
			k := 1 + rng.Intn(12)
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo) + 1
			bulk := idx.QueryRange(s, k, lo, hi)
			scalar := idx.QueryRange(scalarOnly{s}, k, lo, hi)
			if !itemsEqual(bulk, scalar) {
				t.Fatalf("trial %d q=%d n=%d k=%d [%d,%d):\n bulk   %v\n scalar %v",
					trial, q, n, k, lo, hi, bulk, scalar)
			}
		}
	}
}

// TestQueryRangeIntoReusesDst checks the Into contract: results land in the
// provided buffer, and reusing it across probes never corrupts results.
func TestQueryRangeIntoReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ds := randDS(rng, 500, 2, 0)
	idx := Build(ds, Options{LengthThreshold: 16})
	s := score.MustLinear(0.4, 0.6)
	sc := GetScratch()
	defer PutScratch(sc)
	var dst []Item
	for q := 0; q < 50; q++ {
		k := 1 + rng.Intn(10)
		lo := rng.Intn(500)
		hi := lo + rng.Intn(500-lo) + 1
		dst = idx.QueryRangeInto(s, k, lo, hi, sc, dst)
		want := idx.QueryRange(s, k, lo, hi)
		if !itemsEqual(dst, want) {
			t.Fatalf("q=%d k=%d [%d,%d): got %v want %v", q, k, lo, hi, dst, want)
		}
		if cap(dst) > 0 && len(want) > 0 && &dst[0] != &dst[:1][0] {
			t.Fatal("result must live in dst's backing")
		}
	}
}

// TestQueryRangeIntoZeroAllocs asserts the acceptance criterion directly:
// once the scratch and result buffer are warm, a probe performs zero
// allocations — for the bulk-scored built-in scorers and for compiled
// expressions alike.
func TestQueryRangeIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ds := randDS(rng, 4096, 2, 0)
	idx := Build(ds, Options{})
	s := score.MustLinear(0.3, 0.7)
	sc := GetScratch()
	defer PutScratch(sc)
	var dst []Item
	// Warm the buffers.
	for i := 0; i < 10; i++ {
		dst = idx.QueryRangeInto(s, 10, i*128, 4096-i, sc, dst)
	}
	probes := 0
	allocs := testing.AllocsPerRun(200, func() {
		lo := (probes * 37) % 2048
		dst = idx.QueryRangeInto(s, 10, lo, lo+1500, sc, dst)
		probes++
	})
	if allocs != 0 {
		t.Fatalf("steady-state probe allocates %.1f times, want 0", allocs)
	}
}

// TestHugeKDoesNotOverAllocate guards the k-heap bound: a k far beyond the
// range size must not pre-allocate k-sized buffers.
func TestHugeKDoesNotOverAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ds := randDS(rng, 200, 2, 0)
	idx := Build(ds, Options{LengthThreshold: 16})
	s := score.MustLinear(1, 2)
	items := idx.QueryRange(s, 1_000_000_000, 0, 200)
	if len(items) != 200 {
		t.Fatalf("got %d items, want all 200", len(items))
	}
	for i := 1; i < len(items); i++ {
		if Better(items[i], items[i-1]) {
			t.Fatal("results must be ordered best-first")
		}
	}
	if h := newKHeap(1_000_000_000, 200); cap(h.items) != 200 {
		t.Fatalf("newKHeap capacity %d, want bounded at 200", cap(h.items))
	}
}
