package expr

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// genExpr builds a random expression source of bounded depth over dims
// attributes. The construction is deterministic in rng.
func genExpr(rng *rand.Rand, depth, dims int) string {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			return strconv.FormatFloat(math.Round(rng.Float64()*8*100)/100, 'g', -1, 64)
		default:
			return "x" + strconv.Itoa(rng.Intn(dims))
		}
	}
	switch rng.Intn(12) {
	case 0:
		return "(" + genExpr(rng, depth-1, dims) + " + " + genExpr(rng, depth-1, dims) + ")"
	case 1:
		return "(" + genExpr(rng, depth-1, dims) + " - " + genExpr(rng, depth-1, dims) + ")"
	case 2:
		return "(" + genExpr(rng, depth-1, dims) + " * " + genExpr(rng, depth-1, dims) + ")"
	case 3:
		return "(" + genExpr(rng, depth-1, dims) + " / " + genExpr(rng, depth-1, dims) + ")"
	case 4:
		return "-" + "(" + genExpr(rng, depth-1, dims) + ")"
	case 5:
		return "abs(" + genExpr(rng, depth-1, dims) + ")"
	case 6:
		return "sqrt(" + genExpr(rng, depth-1, dims) + ")"
	case 7:
		return "log1p(" + genExpr(rng, depth-1, dims) + ")"
	case 8:
		return "min(" + genExpr(rng, depth-1, dims) + ", " + genExpr(rng, depth-1, dims) + ")"
	case 9:
		return "max(" + genExpr(rng, depth-1, dims) + ", " + genExpr(rng, depth-1, dims) + ")"
	case 10:
		return "(" + genExpr(rng, depth-1, dims) + ")^2"
	default:
		return "exp(" + genExpr(rng, depth-1, dims) + " / 16)"
	}
}

// genBox returns a random attribute box lo <= hi in [-8, 8]^dims.
func genBox(rng *rand.Rand, dims int) (lo, hi []float64) {
	lo = make([]float64, dims)
	hi = make([]float64, dims)
	for i := 0; i < dims; i++ {
		a := rng.Float64()*16 - 8
		b := rng.Float64()*16 - 8
		if a > b {
			a, b = b, a
		}
		lo[i], hi[i] = a, b
	}
	return lo, hi
}

// genPointIn samples a point uniformly inside the box.
func genPointIn(rng *rand.Rand, lo, hi []float64) []float64 {
	x := make([]float64, len(lo))
	for i := range x {
		x[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
	}
	return x
}

// TestQuickUpperBoundSound: for random expressions, boxes, and in-box sample
// points, every finite score is bounded by UpperBound.
func TestQuickUpperBoundSound(t *testing.T) {
	const dims = 3
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genExpr(rng, 3, dims)
		e, err := Compile(src, Options{Dims: dims})
		if err != nil {
			t.Fatalf("generated expression %q does not compile: %v", src, err)
		}
		lo, hi := genBox(rng, dims)
		bound := e.UpperBound(lo, hi)
		if math.IsNaN(bound) {
			t.Errorf("UpperBound(%q) returned NaN", src)
			return false
		}
		for i := 0; i < 32; i++ {
			x := genPointIn(rng, lo, hi)
			v := e.Score(x)
			if math.IsNaN(v) {
				continue // outside the expression's domain
			}
			tol := 1e-9 * (1 + math.Abs(v))
			if v > bound+tol {
				t.Errorf("expr %q: Score(%v)=%v exceeds UpperBound(%v,%v)=%v",
					src, x, v, lo, hi, bound)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeSound mirrors the upper-bound property for the lower side.
func TestQuickRangeSound(t *testing.T) {
	const dims = 3
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genExpr(rng, 3, dims)
		e, err := Compile(src, Options{Dims: dims})
		if err != nil {
			t.Fatalf("generated expression %q does not compile: %v", src, err)
		}
		lo, hi := genBox(rng, dims)
		min, max := e.Range(lo, hi)
		if min > max {
			t.Errorf("expr %q: Range returned min %v > max %v", src, min, max)
			return false
		}
		for i := 0; i < 32; i++ {
			x := genPointIn(rng, lo, hi)
			v := e.Score(x)
			if math.IsNaN(v) {
				continue
			}
			tol := 1e-9 * (1 + math.Abs(v))
			if v < min-tol || v > max+tol {
				t.Errorf("expr %q: Score(%v)=%v escapes Range [%v, %v]", src, x, v, min, max)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMonotoneSound: whenever the analysis claims monotonicity, scores
// must be non-decreasing along componentwise-ordered pairs.
func TestQuickMonotoneSound(t *testing.T) {
	const dims = 3
	monotoneSeen := 0
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genExpr(rng, 3, dims)
		e, err := Compile(src, Options{Dims: dims})
		if err != nil {
			t.Fatalf("generated expression %q does not compile: %v", src, err)
		}
		if !e.IsMonotone() {
			return true
		}
		monotoneSeen++
		for i := 0; i < 32; i++ {
			x := make([]float64, dims)
			y := make([]float64, dims)
			for j := 0; j < dims; j++ {
				x[j] = rng.Float64()*16 - 8
				y[j] = x[j] + rng.Float64()*4
			}
			a, b := e.Score(x), e.Score(y)
			if math.IsNaN(a) || math.IsNaN(b) {
				continue
			}
			tol := 1e-9 * (1 + math.Abs(a))
			if a > b+tol {
				t.Errorf("expr %q claimed monotone but Score(%v)=%v > Score(%v)=%v",
					src, x, a, y, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	if monotoneSeen == 0 {
		t.Error("generator produced no monotone expressions; property vacuous")
	}
}

// TestQuickStringRoundTrip: rendering and re-parsing preserves evaluation.
func TestQuickStringRoundTrip(t *testing.T) {
	const dims = 3
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genExpr(rng, 4, dims)
		e1, err := Compile(src, Options{Dims: dims})
		if err != nil {
			t.Fatalf("generated expression %q does not compile: %v", src, err)
		}
		rendered := e1.String()
		e2, err := Compile(rendered, Options{Dims: dims})
		if err != nil {
			t.Errorf("rendered form %q of %q does not re-compile: %v", rendered, src, err)
			return false
		}
		if e1.IsMonotone() != e2.IsMonotone() {
			t.Errorf("monotonicity changed across round-trip of %q", src)
			return false
		}
		for i := 0; i < 16; i++ {
			x := genPointIn(rng, []float64{-8, -8, -8}, []float64{8, 8, 8})
			a, b := e1.Score(x), e2.Score(x)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Errorf("round-trip of %q via %q: %v vs %v at %v", src, rendered, a, b, x)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratorShape sanity-checks the random generator itself so the
// properties above exercise non-trivial structure.
func TestGeneratorShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sawCall, sawVar := false, false
	for i := 0; i < 64; i++ {
		src := genExpr(rng, 3, 3)
		if strings.ContainsAny(src, "(") {
			sawCall = true
		}
		if strings.Contains(src, "x") {
			sawVar = true
		}
	}
	if !sawCall || !sawVar {
		t.Errorf("generator too trivial: sawCall=%v sawVar=%v", sawCall, sawVar)
	}
}
