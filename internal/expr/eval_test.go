package expr

import (
	"math"
	"testing"
)

func TestEvalGolden(t *testing.T) {
	cases := []struct {
		src  string
		x    []float64
		want float64
	}{
		{"abs(-3)", nil, 3},
		{"sqrt(16)", nil, 4},
		{"exp(0)", nil, 1},
		{"log(e)", nil, 1},
		{"log1p(0)", nil, 0},
		{"floor(2.7)", nil, 2},
		{"ceil(2.2)", nil, 3},
		{"pow(2, 10)", nil, 1024},
		{"min(3, 1, 2)", nil, 1},
		{"max(3, 1, 2)", nil, 3},
		{"pi", nil, math.Pi},
		{"x0/x1", []float64{7, 2}, 3.5},
		{"0.6*x0 + 0.3*x1 + 2*log1p(x2)", []float64{10, 5, math.E - 1}, 9.5},
	}
	for _, c := range cases {
		e := compile(t, c.src, Options{Dims: 3})
		x := c.x
		if x == nil {
			x = []float64{0, 0, 0}
		}
		if got := e.Score(x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalIEEEEdgeCases(t *testing.T) {
	e := compile(t, "1/x0", Options{Dims: 1})
	if got := e.Score([]float64{0}); !math.IsInf(got, 1) {
		t.Errorf("1/0 = %v, want +Inf", got)
	}
	l := compile(t, "log(x0)", Options{Dims: 1})
	if got := l.Score([]float64{-1}); !math.IsNaN(got) {
		t.Errorf("log(-1) = %v, want NaN", got)
	}
	if got := l.Score([]float64{0}); !math.IsInf(got, -1) {
		t.Errorf("log(0) = %v, want -Inf", got)
	}
}

func TestUpperBoundGolden(t *testing.T) {
	cases := []struct {
		src    string
		lo, hi []float64
		want   float64 // exact expected bound
	}{
		{"x0 + x1", []float64{0, 0}, []float64{2, 3}, 5},
		{"x0 - x1", []float64{0, 1}, []float64{2, 3}, 1},
		{"2*x0", []float64{-1, 0}, []float64{4, 0}, 8},
		{"-3*x0", []float64{-2, 0}, []float64{4, 0}, 6},
		{"x0*x1", []float64{-2, -3}, []float64{2, 3}, 6},
		{"x0^2", []float64{0, 0}, []float64{3, 0}, 9},
		{"sqrt(x0)", []float64{4, 0}, []float64{9, 0}, 3},
		{"min(x0, x1)", []float64{1, 2}, []float64{5, 3}, 3},
		{"max(x0, x1)", []float64{1, 2}, []float64{5, 3}, 5},
		{"abs(x0)", []float64{-5, 0}, []float64{2, 0}, 5},
		{"x0/x1", []float64{1, 2}, []float64{6, 4}, 3},
	}
	for _, c := range cases {
		e := compile(t, c.src, Options{Dims: 2})
		if got := e.UpperBound(c.lo, c.hi); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("UpperBound(%q, %v, %v) = %v, want %v", c.src, c.lo, c.hi, got, c.want)
		}
	}
}

func TestUpperBoundWidensOnZeroDivisor(t *testing.T) {
	e := compile(t, "1/x0", Options{Dims: 1})
	if got := e.UpperBound([]float64{-1}, []float64{1}); !math.IsInf(got, 1) {
		t.Errorf("bound over divisor box containing 0 = %v, want +Inf", got)
	}
}

func TestUpperBoundWidensOnUndefinedDomain(t *testing.T) {
	e := compile(t, "log(x0)", Options{Dims: 1})
	if got := e.UpperBound([]float64{-3}, []float64{-1}); !math.IsInf(got, 1) {
		t.Errorf("bound of log over negative box = %v, want +Inf", got)
	}
	s := compile(t, "sqrt(x0)", Options{Dims: 1})
	if got := s.UpperBound([]float64{-3}, []float64{-1}); !math.IsInf(got, 1) {
		t.Errorf("bound of sqrt over negative box = %v, want +Inf", got)
	}
}

func TestRange(t *testing.T) {
	e := compile(t, "x0 - 2*x1", Options{Dims: 2})
	min, max := e.Range([]float64{0, 0}, []float64{4, 3})
	if min != -6 || max != 4 {
		t.Errorf("Range = [%v, %v], want [-6, 4]", min, max)
	}
}

func TestIsMonotone(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"x0 + x1", true},
		{"2*x0 + 3*x1", true},
		{"x0 - x1", false},
		{"-x0", false},
		{"-(-x0)", true},
		{"0*x0", true},     // constant in x0
		{"x0 - x0", false}, // structurally mixed; analysis is conservative
		{"log1p(x0) + sqrt(x1)", true},
		{"min(x0, x1)", true},
		{"max(2*x0, x1 + 1)", true},
		{"min(x0, -x1)", false},
		{"abs(x0)", false},
		{"x0 * x1", false},
		{"x0 / 2", true},
		{"x0 / -2", false},
		{"x0 / x1", false},
		{"6/2 * x0", true},      // constant folding: 3*x0
		{"-(2 - 5) * x0", true}, // folds to 3*x0
		{"x0^2", false},         // conservative for pow
		{"exp(x0) + floor(x1) + ceil(x0)", true},
		{"5", true},
		{"x0 + x1 - 1", true}, // subtracting a constant keeps directions
	}
	for _, c := range cases {
		e := compile(t, c.src, Options{Dims: 2})
		if got := e.IsMonotone(); got != c.want {
			t.Errorf("IsMonotone(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestConstValueFolding(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2*3", 7},
		{"-(4 - 1)", -3},
		{"min(3, 2)", 2},
		{"pow(2, 3)", 8},
		{"sqrt(9)", 3},
	}
	for _, c := range cases {
		e := compile(t, c.src, Options{Dims: 1})
		v, ok := constValue(e.root)
		if !ok || v != c.want {
			t.Errorf("constValue(%q) = %v, %v; want %v, true", c.src, v, ok, c.want)
		}
	}
	e := compile(t, "x0 + 1", Options{Dims: 1})
	if _, ok := constValue(e.root); ok {
		t.Error("constValue should not fold expressions with variables")
	}
}
