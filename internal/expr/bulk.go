package expr

import (
	"math"
	"sync"

	"repro/internal/score"
)

// Block evaluation: compiled expressions score whole contiguous record spans
// without walking the AST once per record. The AST is walked once per block
// of up to blockLen records; every node evaluates vectorwise into reusable
// column buffers, so the per-record cost is one tight arithmetic loop per
// AST node instead of one recursive interface-dispatched descent.
//
// All elementwise operations repeat exactly the scalar eval operations in
// the same order, so block results are bit-for-bit identical to per-record
// evaluation (including NaN, ±Inf and -0.0 propagation).

// blockLen caps how many records one AST walk evaluates; it bounds scratch
// buffer sizes so pooled buffers stay small and cache-resident.
const blockLen = 512

// blockScratch hands out temporary column buffers during one block walk.
// Buffers are recycled via free lists, so the steady-state allocation count
// is zero once the pool has warmed to the expression's operand depth. rows
// is the gather staging area of ScoreGather, grown to one block of rows at
// the widest dimensionality seen and then reused.
type blockScratch struct {
	free [][]float64
	rows []float64
}

func (s *blockScratch) get() []float64 {
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free = s.free[:n-1]
		return b
	}
	return make([]float64, blockLen)
}

func (s *blockScratch) put(b []float64) { s.free = append(s.free, b[:blockLen]) }

var scratchPool = sync.Pool{New: func() interface{} { return new(blockScratch) }}

// ScoreRange implements score.BulkScorer: block evaluation of the compiled
// expression over records [lo, hi) of the flat row-major attribute array
// with stride d, writing record i's score to dst[i-lo].
func (e *Expr) ScoreRange(dst []float64, flat []float64, d, lo, hi int) {
	sc := scratchPool.Get().(*blockScratch)
	for blo := lo; blo < hi; blo += blockLen {
		bhi := blo + blockLen
		if bhi > hi {
			bhi = hi
		}
		e.root.evalBlock(dst[blo-lo:bhi-lo], sc, flat, d, blo, bhi)
	}
	scratchPool.Put(sc)
}

// ScoreGather implements score.BulkScorer's gather kernel. The AST has no
// natural gather form (every node kernel walks a contiguous span), so the
// named rows are gathered into a pooled contiguous staging buffer one block
// at a time (score.GatherRows) and block-evaluated there — the
// gather-into-contiguous-buffer fallback. Each gathered row is evaluated by
// the same block kernels as ScoreRange, so results stay bit-for-bit
// identical to Score.
func (e *Expr) ScoreGather(dst []float64, flat []float64, d int, ids []int32) {
	sc := scratchPool.Get().(*blockScratch)
	for blo := 0; blo < len(ids); blo += blockLen {
		bhi := blo + blockLen
		if bhi > len(ids) {
			bhi = len(ids)
		}
		sc.rows = score.GatherRows(sc.rows, flat, d, ids[blo:bhi])
		e.root.evalBlock(dst[blo:bhi], sc, sc.rows, d, 0, bhi-blo)
	}
	scratchPool.Put(sc)
}

func (n numNode) evalBlock(dst []float64, _ *blockScratch, _ []float64, _, lo, hi int) {
	for i := range dst[:hi-lo] {
		dst[i] = n.v
	}
}

func (n varNode) evalBlock(dst []float64, _ *blockScratch, flat []float64, d, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = flat[i*d+n.dim]
	}
}

func (n negNode) evalBlock(dst []float64, sc *blockScratch, flat []float64, d, lo, hi int) {
	n.n.evalBlock(dst, sc, flat, d, lo, hi)
	for i := range dst[:hi-lo] {
		dst[i] = -dst[i]
	}
}

func (n binNode) evalBlock(dst []float64, sc *blockScratch, flat []float64, d, lo, hi int) {
	n.l.evalBlock(dst, sc, flat, d, lo, hi)
	tmp := sc.get()
	n.r.evalBlock(tmp, sc, flat, d, lo, hi)
	m := hi - lo
	switch n.op {
	case opAdd:
		for i := 0; i < m; i++ {
			dst[i] += tmp[i]
		}
	case opSub:
		for i := 0; i < m; i++ {
			dst[i] -= tmp[i]
		}
	case opMul:
		for i := 0; i < m; i++ {
			dst[i] *= tmp[i]
		}
	case opDiv:
		for i := 0; i < m; i++ {
			dst[i] /= tmp[i]
		}
	default:
		for i := 0; i < m; i++ {
			dst[i] = math.Pow(dst[i], tmp[i])
		}
	}
	sc.put(tmp)
}

func (n callNode) evalBlock(dst []float64, sc *blockScratch, flat []float64, d, lo, hi int) {
	m := hi - lo
	switch n.fn.name {
	case "pow":
		n.args[0].evalBlock(dst, sc, flat, d, lo, hi)
		tmp := sc.get()
		n.args[1].evalBlock(tmp, sc, flat, d, lo, hi)
		for i := 0; i < m; i++ {
			dst[i] = math.Pow(dst[i], tmp[i])
		}
		sc.put(tmp)
	case "min", "max":
		n.args[0].evalBlock(dst, sc, flat, d, lo, hi)
		tmp := sc.get()
		for _, a := range n.args[1:] {
			a.evalBlock(tmp, sc, flat, d, lo, hi)
			if n.fn.name == "min" {
				for i := 0; i < m; i++ {
					dst[i] = math.Min(dst[i], tmp[i])
				}
			} else {
				for i := 0; i < m; i++ {
					dst[i] = math.Max(dst[i], tmp[i])
				}
			}
		}
		sc.put(tmp)
	default:
		n.args[0].evalBlock(dst, sc, flat, d, lo, hi)
		f := n.fn.eval1
		for i := 0; i < m; i++ {
			dst[i] = f(dst[i])
		}
	}
}
