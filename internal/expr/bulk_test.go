package expr

import (
	"math"
	"math/rand"
	"testing"
)

// TestScoreRangeMatchesScore checks block evaluation against per-record AST
// walks bit-for-bit, across spans larger than one evaluation block and over
// attribute data containing NaN, ±Inf and -0.0.
func TestScoreRangeMatchesScore(t *testing.T) {
	exprs := []string{
		"x0",
		"-x0 + 2*x1",
		"0.6*x0 + 0.3*x1 + 2*log1p(x2)",
		"sqrt(abs(x0)) * exp(-x1/10)",
		"min(x0, x1, x2) + max(x0, -x1)",
		"pow(abs(x0), 0.5) + x1^2",
		"(x0 + x1) / (x2 - 3)",
		"floor(x0) - ceil(x1) + pi",
	}
	const d = 3
	n := 3*blockLen + 17 // force multiple blocks plus a ragged tail
	rng := rand.New(rand.NewSource(13))
	flat := make([]float64, n*d)
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)}
	for i := range flat {
		if rng.Intn(12) == 0 {
			flat[i] = specials[rng.Intn(len(specials))]
		} else {
			flat[i] = rng.NormFloat64() * 10
		}
	}
	for _, src := range exprs {
		e := MustCompile(src, Options{Dims: d})
		for trial := 0; trial < 8; trial++ {
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo) + 1
			if trial == 0 {
				lo, hi = 0, n
			}
			dst := make([]float64, hi-lo)
			e.ScoreRange(dst, flat, d, lo, hi)
			for i := lo; i < hi; i++ {
				want := e.Score(flat[i*d : (i+1)*d])
				if math.Float64bits(dst[i-lo]) != math.Float64bits(want) {
					t.Fatalf("%q row %d: bulk %v != scalar %v", src, i, dst[i-lo], want)
				}
			}
		}
	}
}

// TestScoreGatherMatchesScore checks the compiled-expression gather kernel
// (gather-into-contiguous-buffer + block evaluation) against per-record AST
// walks bit-for-bit, with id lists longer than one block and attribute data
// containing NaN, ±Inf and -0.0.
func TestScoreGatherMatchesScore(t *testing.T) {
	exprs := []string{
		"x0",
		"-x0 + 2*x1",
		"0.6*x0 + 0.3*x1 + 2*log1p(x2)",
		"sqrt(abs(x0)) * exp(-x1/10)",
		"min(x0, x1, x2) + max(x0, -x1)",
		"(x0 + x1) / (x2 - 3)",
	}
	const d = 3
	n := 2*blockLen + 5
	rng := rand.New(rand.NewSource(17))
	flat := make([]float64, n*d)
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)}
	for i := range flat {
		if rng.Intn(12) == 0 {
			flat[i] = specials[rng.Intn(len(specials))]
		} else {
			flat[i] = rng.NormFloat64() * 10
		}
	}
	for _, src := range exprs {
		e := MustCompile(src, Options{Dims: d})
		for trial := 0; trial < 8; trial++ {
			m := 1 + rng.Intn(blockLen+blockLen/2) // often spans two blocks
			if trial == 0 {
				m = n
			}
			ids := make([]int32, m)
			for i := range ids {
				ids[i] = int32(rng.Intn(n))
			}
			dst := make([]float64, len(ids))
			e.ScoreGather(dst, flat, d, ids)
			for j, id := range ids {
				want := e.Score(flat[int(id)*d : (int(id)+1)*d])
				// NaN payloads may differ between the block and scalar
				// kernels (the compiler is free to pick the ADDSD operand
				// order, which decides which operand's NaN propagates);
				// every NaN behaves identically in score comparisons, so
				// equality is modulo NaN payload.
				if math.Float64bits(dst[j]) != math.Float64bits(want) &&
					!(math.IsNaN(dst[j]) && math.IsNaN(want)) {
					t.Fatalf("%q id %d: gather %v != scalar %v", src, id, dst[j], want)
				}
			}
		}
	}
}

func BenchmarkScoreRange(b *testing.B) {
	e := MustCompile("0.6*x0 + 0.3*x1 + 2*log1p(x2)", Options{Dims: 3})
	const n, d = 4096, 3
	rng := rand.New(rand.NewSource(3))
	flat := make([]float64, n*d)
	for i := range flat {
		flat[i] = rng.Float64() * 50
	}
	dst := make([]float64, n)
	b.Run("block", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.ScoreRange(dst, flat, d, 0, n)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for r := 0; r < n; r++ {
				dst[r] = e.Score(flat[r*d : (r+1)*d])
			}
		}
	})
}
