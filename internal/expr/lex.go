package expr

import (
	"strconv"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokNumber
	tokIdent
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokCaret
	tokLParen
	tokRParen
	tokComma
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of expression"
	case tokNumber:
		return "number"
	case tokIdent:
		return "identifier"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokCaret:
		return "'^'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	}
	return "unknown token"
}

// token is one lexical token with its source offset.
type token struct {
	kind tokKind
	pos  int
	text string  // identifiers
	num  float64 // numbers
}

// lexer produces tokens from an expression source string.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isAlpha(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b == '_'
}

// next returns the next token or a *ParseError.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	b := l.src[l.pos]
	switch b {
	case '+':
		l.pos++
		return token{kind: tokPlus, pos: start}, nil
	case '-':
		l.pos++
		return token{kind: tokMinus, pos: start}, nil
	case '*':
		l.pos++
		return token{kind: tokStar, pos: start}, nil
	case '/':
		l.pos++
		return token{kind: tokSlash, pos: start}, nil
	case '^':
		l.pos++
		return token{kind: tokCaret, pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	}
	if isDigit(b) || b == '.' {
		return l.number(start)
	}
	if isAlpha(b) {
		for l.pos < len(l.src) && (isAlpha(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, pos: start, text: l.src[start:l.pos]}, nil
	}
	return token{}, &ParseError{Pos: start, Msg: "unexpected character " + strconv.QuoteRune(rune(b))}
}

// number scans an unsigned decimal literal with optional fraction and
// exponent (1, 2.5, .75, 1e-3).
func (l *lexer) number(start int) (token, error) {
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		mark := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = mark // "2e" was the number 2 followed by identifier e
		}
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, &ParseError{Pos: start, Msg: "malformed number " + strconv.Quote(text)}
	}
	return token{kind: tokNumber, pos: start, num: v}, nil
}
