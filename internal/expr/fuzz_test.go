package expr

import (
	"math"
	"testing"
)

// FuzzCompile feeds arbitrary strings to the compiler: it must never panic,
// and whatever compiles must render to a form that re-compiles and
// evaluates identically.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		"", "x0", "1+2*3", "log1p(x0) + sqrt(x1)", "min(x0, x1, 2)",
		"-x0^2", "pow(x0, .5)", "((((x0))))", "1e309", "x999999",
		"pi*e", "0/0", "x0--x1", "max()", "2e", ".", "x0 $ 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Compile(src, Options{Dims: 4})
		if err != nil {
			return // rejection is fine; panics are not
		}
		x := []float64{1.5, -2, 0.25, 7}
		v1 := e.Score(x)
		rendered := e.String()
		e2, err := Compile(rendered, Options{Dims: 4})
		if err != nil {
			t.Fatalf("rendered form %q of %q does not re-compile: %v", rendered, src, err)
		}
		v2 := e2.Score(x)
		if v1 != v2 && !(math.IsNaN(v1) && math.IsNaN(v2)) {
			t.Fatalf("%q: render round-trip changed value: %v vs %v (rendered %q)",
				src, v1, v2, rendered)
		}
		// Bound soundness on one fixed box.
		lo := []float64{-4, -4, -4, -4}
		hi := []float64{4, 4, 4, 4}
		ub := e.UpperBound(lo, hi)
		if math.IsNaN(ub) {
			t.Fatalf("%q: UpperBound returned NaN", src)
		}
		inBox := []float64{0.5, -1, 3.25, -3}
		if v := e.Score(inBox); !math.IsNaN(v) && v > ub+1e-9*(1+math.Abs(v)) {
			t.Fatalf("%q: Score(%v)=%v exceeds box bound %v", src, inBox, v, ub)
		}
	})
}
