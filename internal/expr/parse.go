package expr

import (
	"fmt"
	"math"
)

// parser is a recursive-descent parser over the grammar in the package
// documentation.
type parser struct {
	lex   *lexer
	names map[string]int // user attribute names -> positions
	tok   token          // one-token lookahead
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errHere(format string, args ...interface{}) error {
	return &ParseError{Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

// parse consumes the whole source and returns its AST.
func (p *parser) parse() (node, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokEOF {
		return nil, ErrEmpty
	}
	n, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errHere("unexpected %s after expression", p.tok.kind)
	}
	return n, nil
}

// expr := term (('+'|'-') term)*
func (p *parser) expr() (node, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := opAdd
		if p.tok.kind == tokMinus {
			op = opSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.term()
		if err != nil {
			return nil, err
		}
		left = binNode{op: op, l: left, r: right}
	}
	return left, nil
}

// term := unary (('*'|'/') unary)*
func (p *parser) term() (node, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokStar || p.tok.kind == tokSlash {
		op := opMul
		if p.tok.kind == tokSlash {
			op = opDiv
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = binNode{op: op, l: left, r: right}
	}
	return left, nil
}

// unary := '-' unary | power
func (p *parser) unary() (node, error) {
	if p.tok.kind == tokMinus {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.unary()
		if err != nil {
			return nil, err
		}
		return negNode{n: n}, nil
	}
	return p.power()
}

// power := atom ('^' unary)?   (right-associative; -x^2 parses as -(x^2))
func (p *parser) power() (node, error) {
	base, err := p.atom()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokCaret {
		return base, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	exp, err := p.unary()
	if err != nil {
		return nil, err
	}
	return binNode{op: opPow, l: base, r: exp}, nil
}

// atom := NUMBER | IDENT | IDENT '(' args ')' | '(' expr ')'
func (p *parser) atom() (node, error) {
	switch p.tok.kind {
	case tokNumber:
		n := numNode{v: p.tok.num}
		return n, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errHere("expected ')', found %s", p.tok.kind)
		}
		return n, p.advance()
	case tokIdent:
		return p.ident()
	default:
		return nil, p.errHere("expected a value, found %s", p.tok.kind)
	}
}

// ident resolves an identifier token: call, named attribute, positional
// attribute, or constant.
func (p *parser) ident() (node, error) {
	name, pos := p.tok.text, p.tok.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokLParen {
		fn, ok := functions[name]
		if !ok {
			return nil, &ParseError{Pos: pos, Msg: fmt.Sprintf("unknown function %q", name)}
		}
		return p.call(fn)
	}
	if dim, ok := p.names[name]; ok {
		return varNode{dim: dim, name: name}, nil
	}
	if dim, ok := positionalRef(name); ok {
		return varNode{dim: dim}, nil
	}
	switch name {
	case "pi":
		return numNode{v: math.Pi}, nil
	case "e":
		return numNode{v: math.E}, nil
	}
	if _, isFn := functions[name]; isFn {
		return nil, &ParseError{Pos: pos, Msg: fmt.Sprintf("function %q needs arguments", name)}
	}
	return nil, &ParseError{Pos: pos, Msg: fmt.Sprintf("unknown identifier %q", name)}
}

// call parses the parenthesized argument list of fn (the opening paren is
// the current token).
func (p *parser) call(fn *function) (node, error) {
	if err := p.advance(); err != nil { // consume '('
		return nil, err
	}
	var args []node
	if p.tok.kind != tokRParen {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.tok.kind != tokRParen {
		return nil, p.errHere("expected ')' closing %s(), found %s", fn.name, p.tok.kind)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch {
	case fn.arity >= 0 && len(args) != fn.arity:
		return nil, p.errHere("%s() takes %d argument(s), got %d", fn.name, fn.arity, len(args))
	case fn.arity < 0 && len(args) < 1:
		return nil, p.errHere("%s() needs at least one argument", fn.name)
	}
	return callNode{fn: fn, args: args}, nil
}

// positionalRef matches the x0, x1, … attribute syntax.
func positionalRef(name string) (int, bool) {
	if len(name) < 2 || name[0] != 'x' {
		return 0, false
	}
	dim := 0
	for i := 1; i < len(name); i++ {
		b := name[i]
		if b < '0' || b > '9' {
			return 0, false
		}
		if i == 1 && b == '0' && len(name) > 2 {
			return 0, false // no leading zeros: x01 is an ordinary identifier
		}
		dim = dim*10 + int(b-'0')
		if dim > 1<<20 {
			return 0, false
		}
	}
	return dim, true
}
