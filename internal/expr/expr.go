// Package expr compiles user-written scoring expressions into scorers for
// durable top-k queries.
//
// The paper's query model lets users specify the scoring function at query
// time; this package makes that concrete for interactive tools (durquery,
// durserved): a string such as
//
//	0.6*points + 0.3*assists + 2*log1p(rebounds)
//
// compiles into a Scorer-compatible Expr that also derives the two optional
// capabilities the range top-k index exploits:
//
//   - UpperBound over an attribute box, via interval arithmetic on the AST,
//     so branch-and-bound pruning keeps working for arbitrary expressions;
//   - IsMonotone, via a per-attribute direction analysis, so S-Band
//     eligibility is detected automatically.
//
// Both derivations are conservative: bounds may be loose but never invalid,
// and monotonicity is only reported when provable from the structure.
//
// # Grammar
//
//	expr   := term  (('+'|'-') term)*
//	term   := unary (('*'|'/') unary)*
//	unary  := '-' unary | power
//	power  := atom ('^' unary)?                 // right-associative
//	atom   := NUMBER | IDENT | IDENT '(' expr (',' expr)* ')' | '(' expr ')'
//
// Identifiers resolve, in order, to attribute names supplied at compile time,
// the positional attributes x0, x1, …, the constants pi and e, or a function
// name. Functions: abs, sqrt, exp, log, log1p, floor, ceil, pow(x,y),
// min(a,…), max(a,…).
//
// # Domains
//
// Expressions are evaluated in IEEE float64 arithmetic: log of a negative
// attribute yields NaN, division by zero yields ±Inf, exactly as the
// corresponding math functions do. Scores must be finite for the query
// algorithms' comparisons to be meaningful, so callers should pick
// expressions total over their attribute domain (e.g. log1p over
// non-negative attributes).
package expr

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Options configures compilation.
type Options struct {
	// Dims fixes the attribute dimensionality the compiled expression
	// expects (Scorer.Dims). Zero infers the smallest dimensionality
	// covering every referenced attribute (at least 1).
	Dims int
	// Names optionally maps attribute names to positions: Names[i] becomes
	// an identifier for attribute i. Positional references x0, x1, …
	// remain available. Names must not collide with function or constant
	// names.
	Names []string
}

// Expr is a compiled scoring expression. It implements score.Scorer,
// score.Bounder and score.MonotoneAware, and is immutable and safe for
// concurrent use.
type Expr struct {
	root node
	dims int
	src  string
	vars []int
	mono bool
	key  string
}

// Compile parses and analyzes src. The returned Expr is ready for scoring.
func Compile(src string, opts Options) (*Expr, error) {
	names, err := nameTable(opts.Names)
	if err != nil {
		return nil, err
	}
	p := &parser{lex: newLexer(src), names: names}
	root, err := p.parse()
	if err != nil {
		return nil, err
	}
	maxRef := -1
	seen := map[int]bool{}
	collectVars(root, seen)
	vars := make([]int, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
		if v > maxRef {
			maxRef = v
		}
	}
	sort.Ints(vars)
	dims := opts.Dims
	if dims == 0 {
		dims = maxRef + 1
		if len(opts.Names) > dims {
			dims = len(opts.Names)
		}
		if dims < 1 {
			dims = 1
		}
	}
	if maxRef >= dims {
		return nil, fmt.Errorf("expr: attribute x%d out of range for %d dimensions", maxRef, dims)
	}
	dirs := directions(root, dims)
	mono := true
	for _, d := range dirs {
		if d != dirZero && d != dirInc {
			mono = false
			break
		}
	}
	e := &Expr{root: root, dims: dims, src: src, vars: vars, mono: mono}
	// The canonical render is the cache identity: two sources that parse and
	// fold to the same AST (under the same attribute-name table) score
	// identically, so "0.5*pts + pts*0.5" and "pts" keyed apart is the only
	// cost of keying by render rather than by deep AST equality. Precomputed
	// here so per-query key derivation is a field read.
	e.key = fmt.Sprintf("expr:%d:%s", dims, e.String())
	return e, nil
}

// MustCompile is Compile that panics on error; for tests and constants.
func MustCompile(src string, opts Options) *Expr {
	e, err := Compile(src, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Score implements score.Scorer.
func (e *Expr) Score(x []float64) float64 { return e.root.eval(x) }

// Dims implements score.Scorer.
func (e *Expr) Dims() int { return e.dims }

// Vars returns the attribute positions referenced by the expression, in
// ascending order.
func (e *Expr) Vars() []int {
	out := make([]int, len(e.vars))
	copy(out, e.vars)
	return out
}

// UpperBound implements score.Bounder by interval arithmetic over the AST:
// the returned value is >= Score(x) for every lo <= x <= hi (componentwise).
// NaN sub-results widen to +Inf, keeping the bound sound.
func (e *Expr) UpperBound(lo, hi []float64) float64 {
	iv := e.root.interval(lo, hi)
	if math.IsNaN(iv.hi) {
		return math.Inf(1)
	}
	return iv.hi
}

// Range bounds Score over the attribute box lo..hi from both sides:
// min <= Score(x) <= max for every lo <= x <= hi. Bounds may be infinite
// when the expression is unbounded (or not everywhere defined) on the box.
func (e *Expr) Range(lo, hi []float64) (min, max float64) {
	iv := e.root.interval(lo, hi)
	min, max = iv.lo, iv.hi
	if math.IsNaN(min) {
		min = math.Inf(-1)
	}
	if math.IsNaN(max) {
		max = math.Inf(1)
	}
	return min, max
}

// IsMonotone implements score.MonotoneAware: true only when the direction
// analysis proves the expression non-decreasing in every attribute.
func (e *Expr) IsMonotone() bool { return e.mono }

// Source returns the original expression text.
func (e *Expr) Source() string { return e.src }

// String renders a canonical form of the parsed expression (minimal
// parentheses); Compile(String()) evaluates identically.
func (e *Expr) String() string { return render(e.root, precAdd) }

// CanonicalKey implements score.Keyed: the canonical render plus the
// dimensionality. Attribute names resolve to positions at compile time, so
// the key is only comparable among expressions compiled against the same
// name table — which holds wherever the key is used, since result caches
// scope keys by dataset.
func (e *Expr) CanonicalKey() string { return e.key }

// nameTable validates user attribute names and indexes them.
func nameTable(names []string) (map[string]int, error) {
	if len(names) == 0 {
		return nil, nil
	}
	t := make(map[string]int, len(names))
	for i, n := range names {
		if n == "" {
			continue // unnamed position; reachable as xI
		}
		if !validName(n) {
			return nil, fmt.Errorf("expr: invalid attribute name %q", n)
		}
		if _, ok := functions[n]; ok || n == "pi" || n == "e" {
			return nil, fmt.Errorf("expr: attribute name %q collides with a builtin", n)
		}
		if _, dup := t[n]; dup {
			return nil, fmt.Errorf("expr: duplicate attribute name %q", n)
		}
		t[n] = i
	}
	return t, nil
}

func validName(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}

// ErrEmpty reports a source with no expression.
var ErrEmpty = errors.New("expr: empty expression")

// ParseError reports a syntax or resolution problem with its byte offset in
// the source.
type ParseError struct {
	Pos int    // byte offset into the source
	Msg string // human-readable description
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("expr: %s at offset %d", e.Msg, e.Pos) }
