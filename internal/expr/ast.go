package expr

import (
	"math"
	"strconv"
	"strings"
)

// intv is a closed interval [lo, hi] used for box bounds. A NaN endpoint
// means "unknown"; consumers widen it to the appropriate infinity.
type intv struct{ lo, hi float64 }

func point(v float64) intv { return intv{v, v} }

func wide() intv { return intv{math.Inf(-1), math.Inf(1)} }

// node is one AST node. Implementations are immutable after parsing.
type node interface {
	// eval computes the node's value on one attribute vector.
	eval(x []float64) float64
	// interval bounds the node's value over the attribute box lo..hi.
	interval(lo, hi []float64) intv
	// evalBlock computes the node's value for records [lo, hi) of the flat
	// row-major attribute array with stride d, writing record i's value to
	// dst[i-lo]. Temporaries come from sc; hi-lo never exceeds blockLen.
	// Results are bit-for-bit identical to per-record eval calls.
	evalBlock(dst []float64, sc *blockScratch, flat []float64, d, lo, hi int)
}

// --- literals and variables ---

type numNode struct{ v float64 }

func (n numNode) eval([]float64) float64       { return n.v }
func (n numNode) interval(_, _ []float64) intv { return point(n.v) }

type varNode struct {
	dim  int
	name string // render name; "" renders as xDIM
}

func (n varNode) eval(x []float64) float64 { return x[n.dim] }
func (n varNode) interval(lo, hi []float64) intv {
	return intv{lo[n.dim], hi[n.dim]}
}

// --- arithmetic ---

type opKind int

const (
	opAdd opKind = iota
	opSub
	opMul
	opDiv
	opPow
)

type binNode struct {
	op   opKind
	l, r node
}

func (n binNode) eval(x []float64) float64 {
	a, b := n.l.eval(x), n.r.eval(x)
	switch n.op {
	case opAdd:
		return a + b
	case opSub:
		return a - b
	case opMul:
		return a * b
	case opDiv:
		return a / b
	default:
		return math.Pow(a, b)
	}
}

func (n binNode) interval(lo, hi []float64) intv {
	a, b := n.l.interval(lo, hi), n.r.interval(lo, hi)
	if bad(a) || bad(b) {
		return wide()
	}
	switch n.op {
	case opAdd:
		return intv{a.lo + b.lo, a.hi + b.hi}
	case opSub:
		return intv{a.lo - b.hi, a.hi - b.lo}
	case opMul:
		return mulI(a, b)
	case opDiv:
		return divI(a, b)
	default:
		return powI(a, b)
	}
}

type negNode struct{ n node }

func (n negNode) eval(x []float64) float64 { return -n.n.eval(x) }
func (n negNode) interval(lo, hi []float64) intv {
	iv := n.n.interval(lo, hi)
	if bad(iv) {
		return wide()
	}
	return intv{-iv.hi, -iv.lo}
}

// --- function calls ---

type callNode struct {
	fn   *function
	args []node
}

func (n callNode) eval(x []float64) float64 {
	switch n.fn.name {
	case "pow":
		return math.Pow(n.args[0].eval(x), n.args[1].eval(x))
	case "min", "max":
		v := n.args[0].eval(x)
		for _, a := range n.args[1:] {
			w := a.eval(x)
			if n.fn.name == "min" {
				v = math.Min(v, w)
			} else {
				v = math.Max(v, w)
			}
		}
		return v
	default:
		return n.fn.eval1(n.args[0].eval(x))
	}
}

func (n callNode) interval(lo, hi []float64) intv {
	if n.fn.name == "pow" {
		a, b := n.args[0].interval(lo, hi), n.args[1].interval(lo, hi)
		if bad(a) || bad(b) {
			return wide()
		}
		return powI(a, b)
	}
	if n.fn.name == "min" || n.fn.name == "max" {
		iv := n.args[0].interval(lo, hi)
		if bad(iv) {
			return wide()
		}
		for _, a := range n.args[1:] {
			w := a.interval(lo, hi)
			if bad(w) {
				return wide()
			}
			if n.fn.name == "min" {
				iv = intv{math.Min(iv.lo, w.lo), math.Min(iv.hi, w.hi)}
			} else {
				iv = intv{math.Max(iv.lo, w.lo), math.Max(iv.hi, w.hi)}
			}
		}
		return iv
	}
	iv := n.args[0].interval(lo, hi)
	if bad(iv) {
		return wide()
	}
	return n.fn.interval1(iv)
}

// function describes a builtin callable.
type function struct {
	name      string
	arity     int  // exact arity; -1 for variadic (>= 1)
	monotone  int8 // +1 non-decreasing, -1 non-increasing, 0 neither/unknown
	eval1     func(float64) float64
	interval1 func(intv) intv
}

// monoEndpoints bounds a monotone non-decreasing f by its endpoint images.
func monoEndpoints(f func(float64) float64) func(intv) intv {
	return func(iv intv) intv { return intv{f(iv.lo), f(iv.hi)} }
}

var functions = map[string]*function{
	"abs": {name: "abs", arity: 1, monotone: 0, eval1: math.Abs,
		interval1: func(iv intv) intv {
			m := math.Max(math.Abs(iv.lo), math.Abs(iv.hi))
			if iv.lo <= 0 && iv.hi >= 0 {
				return intv{0, m}
			}
			return intv{math.Min(math.Abs(iv.lo), math.Abs(iv.hi)), m}
		}},
	"sqrt": {name: "sqrt", arity: 1, monotone: 1, eval1: math.Sqrt,
		interval1: func(iv intv) intv {
			if iv.hi < 0 {
				return wide() // nowhere defined on the box
			}
			return intv{math.Sqrt(math.Max(iv.lo, 0)), math.Sqrt(iv.hi)}
		}},
	"exp": {name: "exp", arity: 1, monotone: 1, eval1: math.Exp,
		interval1: monoEndpoints(math.Exp)},
	"log": {name: "log", arity: 1, monotone: 1, eval1: math.Log,
		interval1: func(iv intv) intv {
			if iv.hi <= 0 {
				return wide()
			}
			return intv{math.Log(math.Max(iv.lo, 0)), math.Log(iv.hi)}
		}},
	"log1p": {name: "log1p", arity: 1, monotone: 1, eval1: math.Log1p,
		interval1: func(iv intv) intv {
			if iv.hi <= -1 {
				return wide()
			}
			return intv{math.Log1p(math.Max(iv.lo, -1)), math.Log1p(iv.hi)}
		}},
	"floor": {name: "floor", arity: 1, monotone: 1, eval1: math.Floor,
		interval1: monoEndpoints(math.Floor)},
	"ceil": {name: "ceil", arity: 1, monotone: 1, eval1: math.Ceil,
		interval1: monoEndpoints(math.Ceil)},
	"pow": {name: "pow", arity: 2},
	"min": {name: "min", arity: -1},
	"max": {name: "max", arity: -1},
}

// --- interval helpers ---

// bad reports an interval with a NaN endpoint (unknown bound).
func bad(iv intv) bool { return math.IsNaN(iv.lo) || math.IsNaN(iv.hi) }

// safeMul multiplies bound candidates mapping the IEEE indeterminate
// 0 * ±Inf to 0, the standard interval-arithmetic convention.
func safeMul(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a * b
}

func mulI(a, b intv) intv {
	c1 := safeMul(a.lo, b.lo)
	c2 := safeMul(a.lo, b.hi)
	c3 := safeMul(a.hi, b.lo)
	c4 := safeMul(a.hi, b.hi)
	return intv{
		math.Min(math.Min(c1, c2), math.Min(c3, c4)),
		math.Max(math.Max(c1, c2), math.Max(c3, c4)),
	}
}

func divI(a, b intv) intv {
	if b.lo <= 0 && b.hi >= 0 {
		return wide() // denominator box contains zero
	}
	inv := intv{1 / b.hi, 1 / b.lo}
	return mulI(a, inv)
}

// powI bounds x^y over boxes. For non-negative bases the function is
// monotone along each coordinate, so corner evaluation is exact; negative
// bases widen to unknown (math.Pow is not continuous there).
func powI(a, b intv) intv {
	if a.lo < 0 {
		return wide()
	}
	c1 := math.Pow(a.lo, b.lo)
	c2 := math.Pow(a.lo, b.hi)
	c3 := math.Pow(a.hi, b.lo)
	c4 := math.Pow(a.hi, b.hi)
	lo := math.Min(math.Min(c1, c2), math.Min(c3, c4))
	hi := math.Max(math.Max(c1, c2), math.Max(c3, c4))
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return wide()
	}
	return intv{lo, hi}
}

// --- monotonicity analysis ---

// dir is the per-attribute direction of a subexpression.
type dir int8

const (
	dirZero dir = iota // constant in the attribute
	dirInc             // non-decreasing
	dirDec             // non-increasing
	dirAny             // unknown / mixed
)

func flip(d dir) dir {
	switch d {
	case dirInc:
		return dirDec
	case dirDec:
		return dirInc
	}
	return d
}

// combineAdd merges directions of added subexpressions.
func combineAdd(a, b dir) dir {
	switch {
	case a == dirZero:
		return b
	case b == dirZero:
		return a
	case a == b:
		return a
	default:
		return dirAny
	}
}

// constValue folds constant subtrees (no variables) to their value.
func constValue(n node) (float64, bool) {
	switch t := n.(type) {
	case numNode:
		return t.v, true
	case negNode:
		v, ok := constValue(t.n)
		return -v, ok
	case binNode:
		a, okA := constValue(t.l)
		b, okB := constValue(t.r)
		if !okA || !okB {
			return 0, false
		}
		return binNode{op: t.op, l: numNode{a}, r: numNode{b}}.eval(nil), true
	case callNode:
		args := make([]node, len(t.args))
		for i, a := range t.args {
			v, ok := constValue(a)
			if !ok {
				return 0, false
			}
			args[i] = numNode{v}
		}
		return callNode{fn: t.fn, args: args}.eval(nil), true
	}
	return 0, false
}

// directions computes the per-attribute direction vector of n; the analysis
// is conservative (dirAny when monotonicity cannot be established
// structurally).
func directions(n node, dims int) []dir {
	out := make([]dir, dims)
	walkDirs(n, out)
	return out
}

// walkDirs computes n's directions into out (length dims).
func walkDirs(n node, out []dir) {
	switch t := n.(type) {
	case numNode:
		for i := range out {
			out[i] = dirZero
		}
	case varNode:
		for i := range out {
			out[i] = dirZero
		}
		out[t.dim] = dirInc
	case negNode:
		walkDirs(t.n, out)
		for i := range out {
			out[i] = flip(out[i])
		}
	case binNode:
		walkBinDirs(t, out)
	case callNode:
		walkCallDirs(t, out)
	}
}

func walkBinDirs(t binNode, out []dir) {
	switch t.op {
	case opAdd, opSub:
		walkDirs(t.l, out)
		rs := make([]dir, len(out))
		walkDirs(t.r, rs)
		for i := range out {
			r := rs[i]
			if t.op == opSub {
				r = flip(r)
			}
			out[i] = combineAdd(out[i], r)
		}
	case opMul, opDiv:
		// Monotone only when one side folds to a constant of known sign.
		if c, ok := constValue(t.r); ok {
			walkDirs(t.l, out)
			scaleDirs(out, c, t.op == opDiv)
			return
		}
		if c, ok := constValue(t.l); ok && t.op == opMul {
			walkDirs(t.r, out)
			scaleDirs(out, c, false)
			return
		}
		anyDirs(t, out)
	default: // opPow: conservative
		anyDirs(t, out)
	}
}

// scaleDirs adjusts directions for multiplication (or division) by the
// constant c.
func scaleDirs(out []dir, c float64, divide bool) {
	switch {
	case c == 0 && !divide:
		for i := range out {
			out[i] = dirZero
		}
	case c > 0:
		// unchanged
	case c < 0:
		for i := range out {
			out[i] = flip(out[i])
		}
	default: // c == 0 divisor, or NaN constant
		for i := range out {
			out[i] = dirAny
		}
	}
}

func walkCallDirs(t callNode, out []dir) {
	switch t.fn.name {
	case "min", "max":
		walkDirs(t.args[0], out)
		rs := make([]dir, len(out))
		for _, a := range t.args[1:] {
			walkDirs(a, rs)
			for i := range out {
				out[i] = combineAdd(out[i], rs[i])
			}
		}
	default:
		switch t.fn.monotone {
		case 1:
			walkDirs(t.args[0], out)
		case -1:
			walkDirs(t.args[0], out)
			for i := range out {
				out[i] = flip(out[i])
			}
		default:
			anyDirs(t, out)
		}
	}
}

// anyDirs marks every attribute referenced under n as unknown, others zero.
func anyDirs(n node, out []dir) {
	seen := map[int]bool{}
	collectVars(n, seen)
	for i := range out {
		if seen[i] {
			out[i] = dirAny
		} else {
			out[i] = dirZero
		}
	}
}

// collectVars records every attribute position referenced under n.
func collectVars(n node, seen map[int]bool) {
	switch t := n.(type) {
	case varNode:
		seen[t.dim] = true
	case negNode:
		collectVars(t.n, seen)
	case binNode:
		collectVars(t.l, seen)
		collectVars(t.r, seen)
	case callNode:
		for _, a := range t.args {
			collectVars(a, seen)
		}
	}
}

// --- rendering ---

// Operator precedence levels for minimal-parenthesis rendering.
const (
	precAdd = iota + 1
	precMul
	precUnary
	precPow
	precAtom
)

func renderTo(b *strings.Builder, n node, outer int) {
	switch t := n.(type) {
	case numNode:
		if t.v < 0 || math.Signbit(t.v) {
			// Negative literals only arise from folding; parenthesize so the
			// output re-parses as a unary minus in any context.
			b.WriteByte('(')
			b.WriteString(strconv.FormatFloat(t.v, 'g', -1, 64))
			b.WriteByte(')')
			return
		}
		b.WriteString(strconv.FormatFloat(t.v, 'g', -1, 64))
	case varNode:
		if t.name != "" {
			b.WriteString(t.name)
		} else {
			b.WriteByte('x')
			b.WriteString(strconv.Itoa(t.dim))
		}
	case negNode:
		if outer > precUnary {
			b.WriteByte('(')
			defer b.WriteByte(')')
		}
		b.WriteByte('-')
		renderTo(b, t.n, precUnary+1)
	case binNode:
		prec, sym := precAdd, "+"
		switch t.op {
		case opSub:
			sym = "-"
		case opMul:
			prec, sym = precMul, "*"
		case opDiv:
			prec, sym = precMul, "/"
		case opPow:
			prec, sym = precPow, "^"
		}
		if outer > prec {
			b.WriteByte('(')
			defer b.WriteByte(')')
		}
		// Left-associative operators need the right child one level tighter;
		// '^' is right-associative and needs the left child tighter.
		lp, rp := prec, prec+1
		if t.op == opPow {
			lp, rp = prec+1, prec
		}
		renderTo(b, t.l, lp)
		b.WriteString(" " + sym + " ")
		renderTo(b, t.r, rp)
	case callNode:
		b.WriteString(t.fn.name)
		b.WriteByte('(')
		for i, a := range t.args {
			if i > 0 {
				b.WriteString(", ")
			}
			renderTo(b, a, precAdd)
		}
		b.WriteByte(')')
	}
}

func render(n node, outer int) string {
	var b strings.Builder
	renderTo(&b, n, outer)
	return b.String()
}
