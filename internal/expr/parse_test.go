package expr

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func compile(t *testing.T, src string, opts Options) *Expr {
	t.Helper()
	e, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return e
}

func TestCompileValid(t *testing.T) {
	cases := []string{
		"1",
		"x0",
		"x0 + x1",
		"2*x0 - 3*x1/4",
		"-x0",
		"--x0",
		"(x0 + 1) * (x1 - 2)",
		"x0^2",
		"2^x0^2", // right-assoc
		"log1p(x0) + sqrt(x1)",
		"min(x0, x1, x2)",
		"max(x0)",
		"pow(x0, 0.5)",
		"pi * e",
		"1e3 + 2.5E-2 + .5",
		"abs(-x0)",
		"floor(x0) + ceil(x1)",
	}
	for _, src := range cases {
		if _, err := Compile(src, Options{Dims: 4}); err != nil {
			t.Errorf("Compile(%q) failed: %v", src, err)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of the error
	}{
		{"", "empty"},
		{"   ", "empty"},
		{"x0 +", "expected a value"},
		{"(x0", "expected ')'"},
		{"x0)", "unexpected ')'"},
		{"1 2", "unexpected number"},
		{"foo(x0)", "unknown function"},
		{"bogus", "unknown identifier"},
		{"log()", "takes 1 argument"},
		{"log(x0, x1)", "takes 1 argument"},
		{"pow(x0)", "takes 2 argument"},
		{"min()", "at least one argument"},
		{"log", "needs arguments"},
		{"x0 $ x1", "unexpected character"},
		{"x0 + x9", "out of range"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, Options{Dims: 3})
		if err == nil {
			t.Errorf("Compile(%q): expected error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q): error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Compile("x0 + bogus", Options{Dims: 1})
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *ParseError, got %T (%v)", err, err)
	}
	if pe.Pos != 5 {
		t.Errorf("error position = %d, want 5", pe.Pos)
	}
}

func TestEmptyExpression(t *testing.T) {
	_, err := Compile("", Options{})
	if !errors.Is(err, ErrEmpty) {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
}

func TestPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		x    []float64
		want float64
	}{
		{"1 + 2 * 3", nil, 7},
		{"(1 + 2) * 3", nil, 9},
		{"2 - 3 - 4", nil, -5},  // left-assoc
		{"12 / 2 / 3", nil, 2},  // left-assoc
		{"2 ^ 3 ^ 2", nil, 512}, // right-assoc
		{"-2 ^ 2", nil, -4},     // unary binds looser than ^
		{"(-2) ^ 2", nil, 4},
		{"2 * -3", nil, -6},
		{"2 ^ -1", nil, 0.5},
		{"x0 + x1 * x0", []float64{2, 5}, 12},
		{"1e3", nil, 1000},
		{"2e", nil, 2 * math.E}, // "2e" lexes as 2 followed by identifier e? no: juxtaposition is an error
	}
	for _, c := range cases {
		if c.src == "2e" {
			// "2e" is the number 2 followed by the identifier e with no
			// operator: a parse error, not implicit multiplication.
			if _, err := Compile(c.src, Options{Dims: 1}); err == nil {
				t.Errorf("Compile(%q) should fail (no implicit multiplication)", c.src)
			}
			continue
		}
		e := compile(t, c.src, Options{Dims: 2})
		x := c.x
		if x == nil {
			x = []float64{0, 0}
		}
		if got := e.Score(x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPositionalRefs(t *testing.T) {
	e := compile(t, "x0 + 10*x1 + 100*x11", Options{Dims: 12})
	x := make([]float64, 12)
	x[0], x[1], x[11] = 1, 2, 3
	if got := e.Score(x); got != 321 {
		t.Errorf("Score = %v, want 321", got)
	}
	if got := e.Vars(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 11 {
		t.Errorf("Vars = %v, want [0 1 11]", got)
	}
}

func TestLeadingZeroNotPositional(t *testing.T) {
	// x01 must not silently alias x1; it is an unknown identifier.
	if _, err := Compile("x01", Options{Dims: 3}); err == nil {
		t.Fatal("x01 should not resolve as a positional reference")
	}
}

func TestNamedAttributes(t *testing.T) {
	opts := Options{Names: []string{"points", "assists", "rebounds"}}
	e := compile(t, "0.5*points + assists + 2*rebounds", opts)
	if e.Dims() != 3 {
		t.Fatalf("Dims = %d, want 3", e.Dims())
	}
	if got := e.Score([]float64{10, 4, 3}); got != 15 {
		t.Errorf("Score = %v, want 15", got)
	}
	// Positional references coexist with names.
	e2 := compile(t, "points + x2", opts)
	if got := e2.Score([]float64{1, 0, 5}); got != 6 {
		t.Errorf("Score = %v, want 6", got)
	}
}

func TestNameTableErrors(t *testing.T) {
	cases := []Options{
		{Names: []string{"points", "points"}}, // duplicate
		{Names: []string{"min"}},              // builtin collision
		{Names: []string{"pi"}},               // constant collision
		{Names: []string{"bad name"}},         // invalid chars
		{Names: []string{"1st"}},              // leading digit
	}
	for i, opts := range cases {
		if _, err := Compile("1", opts); err == nil {
			t.Errorf("case %d: expected name-table error", i)
		}
	}
}

func TestEmptyNameSlotsAreSkipped(t *testing.T) {
	opts := Options{Names: []string{"points", "", "rebounds"}}
	e := compile(t, "points + x1 + rebounds", opts)
	if got := e.Score([]float64{1, 2, 4}); got != 7 {
		t.Errorf("Score = %v, want 7", got)
	}
}

func TestDimsInference(t *testing.T) {
	e := compile(t, "x3 + x1", Options{})
	if e.Dims() != 4 {
		t.Errorf("inferred Dims = %d, want 4", e.Dims())
	}
	c := compile(t, "42", Options{})
	if c.Dims() != 1 {
		t.Errorf("constant Dims = %d, want 1", c.Dims())
	}
	n := compile(t, "1", Options{Names: []string{"a", "b", "c"}})
	if n.Dims() != 3 {
		t.Errorf("named Dims = %d, want 3", n.Dims())
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile should panic on a bad expression")
		}
	}()
	MustCompile("(", Options{})
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		"1 + 2*3",
		"x0 - (x1 - x2)",
		"-x0 ^ 2",
		"(-x0) ^ 2",
		"2*x0 - 3*x1/4 + min(x0, x1, 1)",
		"log1p(x0) + sqrt(abs(x1 - 3))",
		"pow(x0 + 1, 2) / (x1 + 5)",
		"2 ^ 3 ^ x0",
		"max(x0, -x1)",
	}
	xs := [][]float64{{0.3, 1.7, 2.2}, {5, 0.1, 9}, {1, 1, 1}}
	for _, src := range cases {
		e1 := compile(t, src, Options{Dims: 3})
		e2 := compile(t, e1.String(), Options{Dims: 3})
		for _, x := range xs {
			a, b := e1.Score(x), e2.Score(x)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Errorf("%q: rendered %q evaluates differently: %v vs %v at %v",
					src, e1.String(), a, b, x)
			}
		}
	}
}

func TestSourceAccessor(t *testing.T) {
	src := " x0+1 "
	e := compile(t, src, Options{Dims: 1})
	if e.Source() != src {
		t.Errorf("Source = %q, want %q", e.Source(), src)
	}
}
