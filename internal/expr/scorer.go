package expr

import "repro/internal/score"

// Compile-time checks: a compiled expression plugs into every scorer
// capability the durable top-k engine can exploit.
var (
	_ score.Scorer        = (*Expr)(nil)
	_ score.Bounder       = (*Expr)(nil)
	_ score.MonotoneAware = (*Expr)(nil)
	_ score.BulkScorer    = (*Expr)(nil)
)
