package expr_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/expr"
	"repro/internal/score"
)

// randomDataset builds a small random dataset for engine-level tests.
func randomDataset(t *testing.T, n, dims int, seed int64) *data.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	times := make([]int64, n)
	attrs := make([][]float64, n)
	for i := 0; i < n; i++ {
		times[i] = int64(i + 1)
		row := make([]float64, dims)
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		attrs[i] = row
	}
	ds, err := data.New(times, attrs)
	if err != nil {
		t.Fatalf("building dataset: %v", err)
	}
	return ds
}

// TestExprMatchesLinearScorer: a compiled linear expression must produce the
// same durable top-k answer as the native Linear scorer on every algorithm.
func TestExprMatchesLinearScorer(t *testing.T) {
	ds := randomDataset(t, 600, 3, 42)
	eng := core.NewEngine(ds, core.Options{})
	native := score.MustLinear(0.6, 0.3, 0.1)
	compiled := expr.MustCompile("0.6*x0 + 0.3*x1 + 0.1*x2", expr.Options{Dims: 3})

	if !compiled.IsMonotone() {
		t.Fatal("compiled non-negative linear expression should be monotone")
	}
	for _, alg := range core.Algorithms() {
		q := core.Query{K: 3, Tau: 80, Start: 1, End: 600, Algorithm: alg}
		q.Scorer = native
		want, err := eng.DurableTopK(q)
		if err != nil {
			t.Fatalf("%v native: %v", alg, err)
		}
		q.Scorer = compiled
		got, err := eng.DurableTopK(q)
		if err != nil {
			t.Fatalf("%v compiled: %v", alg, err)
		}
		if !reflect.DeepEqual(got.IDs(), want.IDs()) {
			t.Errorf("%v: compiled expression answer %v differs from native %v",
				alg, got.IDs(), want.IDs())
		}
	}
}

// TestExprNonLinearAgainstOracle: a genuinely non-linear expression works
// through the anchor-generic algorithms and matches the brute-force oracle.
func TestExprNonLinearAgainstOracle(t *testing.T) {
	ds := randomDataset(t, 400, 2, 7)
	eng := core.NewEngine(ds, core.Options{})
	s := expr.MustCompile("log1p(x0) * 2 + sqrt(x1)", expr.Options{Dims: 2})
	want := core.BruteForce(ds, s, 2, 50, 1, 400, core.LookBack)
	for _, alg := range []core.Algorithm{core.TBase, core.THop, core.SBase, core.SHop} {
		res, err := eng.DurableTopK(core.Query{
			K: 2, Tau: 50, Start: 1, End: 400, Scorer: s, Algorithm: alg,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got := res.IDs()
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: got %v, want %v", alg, got, want)
		}
	}
}

// TestExprMonotoneEnablesSBand: the automatic monotonicity detection must
// unlock S-Band for provably monotone expressions and reject mixed ones.
func TestExprMonotoneEnablesSBand(t *testing.T) {
	ds := randomDataset(t, 300, 2, 11)
	eng := core.NewEngine(ds, core.Options{})
	mono := expr.MustCompile("x0 + log1p(x1)", expr.Options{Dims: 2})
	res, err := eng.DurableTopK(core.Query{
		K: 2, Tau: 40, Start: 1, End: 300, Scorer: mono, Algorithm: core.SBand,
	})
	if err != nil {
		t.Fatalf("S-Band with monotone expression: %v", err)
	}
	want := core.BruteForce(ds, mono, 2, 40, 1, 300, core.LookBack)
	if !reflect.DeepEqual(res.IDs(), append([]int(nil), want...)) && len(want) > 0 {
		t.Errorf("S-Band answer %v, want %v", res.IDs(), want)
	}

	mixed := expr.MustCompile("x0 - x1", expr.Options{Dims: 2})
	_, err = eng.DurableTopK(core.Query{
		K: 2, Tau: 40, Start: 1, End: 300, Scorer: mixed, Algorithm: core.SBand,
	})
	if err == nil {
		t.Fatal("S-Band must reject a non-monotone expression")
	}
}

// TestExprOnGeneratedWorkload smoke-tests an expression scorer over the
// NBA-like generator end to end.
func TestExprOnGeneratedWorkload(t *testing.T) {
	full := datagen.NBA(3, 2000)
	ds, err := full.Project([]int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(ds, core.Options{})
	s := expr.MustCompile("x0 + 0.5*x1 + 0.7*x2 + 2*x3 + 2*x4", expr.Options{Dims: 5})
	res, err := eng.DurableTopK(core.Query{
		K: 5, Tau: 200, Start: ds.Time(0), End: ds.Time(ds.Len() - 1), Scorer: s,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := core.BruteForce(ds, s, 5, 200, ds.Time(0), ds.Time(ds.Len()-1), core.LookBack)
	if !reflect.DeepEqual(res.IDs(), want) {
		t.Errorf("auto algorithm with expression scorer: got %d records, want %d",
			len(res.IDs()), len(want))
	}
}
