// Benchmarks regenerating the paper's evaluation: one testing.B benchmark
// per table and figure, each delegating to the same internal/bench harness
// the durbench CLI uses. Run them all with:
//
//	go test -bench=. -benchmem
//
// Sub-benchmark names encode the swept parameter and algorithm, so -bench
// can select slices of a figure, e.g.:
//
//	go test -bench 'Fig8VaryTau/nba-2/tau=25/s-hop'
package durable_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dbms"
	"repro/internal/expr"
	"repro/internal/planner"
	"repro/internal/score"
	"repro/internal/topk"
)

// benchConfig keeps dataset sizes moderate so the full suite finishes in
// minutes; raise Scale for paper-scale runs.
func benchConfig() bench.Config {
	return bench.Config{Scale: 0.25, Reps: 3, Seed: 1, Quick: true}
}

// runQuerySweep benchmarks one DurableTopK configuration per iteration.
func runQuerySweep(b *testing.B, dsName string, spec bench.QuerySpec, alg core.Algorithm) {
	b.Helper()
	eng, err := bench.EngineFor(benchConfig(), dsName)
	if err != nil {
		b.Fatal(err)
	}
	if alg == core.SBand {
		eng.PrepareSkyband(spec.K, core.LookBack)
	}
	ds := eng.Dataset()
	s := bench.RandomPreference(rngFor(dsName), ds.Dims())
	q := spec.Materialize(ds, s, alg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.DurableTopK(q); err != nil {
			b.Fatal(err)
		}
	}
}

func rngFor(name string) *rand.Rand {
	return rand.New(rand.NewSource(int64(len(name)) + 7))
}

// --- Figure 8: vary tau -------------------------------------------------

func BenchmarkFig8VaryTau(b *testing.B) {
	for _, ds := range []string{"nba-2", "network-2"} {
		for _, tau := range []int{5, 10, 25, 50} {
			for _, alg := range core.Algorithms() {
				b.Run(fmt.Sprintf("%s/tau=%d/%s", ds, tau, alg), func(b *testing.B) {
					runQuerySweep(b, ds, bench.QuerySpec{K: 10, TauPct: tau, IPct: 50}, alg)
				})
			}
		}
	}
}

// --- Figure 9: vary k ----------------------------------------------------

func BenchmarkFig9VaryK(b *testing.B) {
	for _, k := range []int{5, 20, 50} {
		for _, alg := range core.Algorithms() {
			b.Run(fmt.Sprintf("nba-2/k=%d/%s", k, alg), func(b *testing.B) {
				runQuerySweep(b, "nba-2", bench.QuerySpec{K: k, TauPct: 10, IPct: 50}, alg)
			})
		}
	}
}

// --- Figure 10: vary |I| -------------------------------------------------

func BenchmarkFig10VaryI(b *testing.B) {
	for _, ipct := range []int{10, 40, 80} {
		for _, alg := range core.Algorithms() {
			b.Run(fmt.Sprintf("nba-2/i=%d/%s", ipct, alg), func(b *testing.B) {
				runQuerySweep(b, "nba-2", bench.QuerySpec{K: 10, TauPct: 10, IPct: ipct}, alg)
			})
		}
	}
}

// --- Figure 11: vary dimensionality --------------------------------------

func BenchmarkFig11VaryD(b *testing.B) {
	for _, d := range []int{2, 5, 10, 20} {
		for _, alg := range []core.Algorithm{core.TBase, core.THop, core.SBand, core.SHop} {
			b.Run(fmt.Sprintf("network-%d/%s", d, alg), func(b *testing.B) {
				runQuerySweep(b, fmt.Sprintf("network-%d", d),
					bench.QuerySpec{K: 10, TauPct: 10, IPct: 50}, alg)
			})
		}
	}
}

// --- Figure 12: scalability ----------------------------------------------

func BenchmarkFig12Scalability(b *testing.B) {
	for _, kind := range []string{"ind", "anti"} {
		for _, n := range []int{5_000, 20_000, 80_000} {
			for _, alg := range []core.Algorithm{core.THop, core.SHop} {
				b.Run(fmt.Sprintf("%s-%d/%s", kind, n, alg), func(b *testing.B) {
					runQuerySweep(b, fmt.Sprintf("%s-%d", kind, n),
						bench.QuerySpec{K: 10, TauPct: 10, IPct: 50}, alg)
				})
			}
		}
	}
}

// --- Figure 13: 5-d NBA projections --------------------------------------

func BenchmarkFig13Distribution(b *testing.B) {
	for _, alg := range []core.Algorithm{core.THop, core.SHop, core.SBand} {
		b.Run(fmt.Sprintf("nba-5/%s", alg), func(b *testing.B) {
			runQuerySweep(b, "nba-5", bench.QuerySpec{K: 10, TauPct: 10, IPct: 50}, alg)
		})
	}
}

// --- Figure 1: case study ------------------------------------------------

func BenchmarkFig1CaseStudy(b *testing.B) {
	eng, err := bench.EngineFor(benchConfig(), "nba-1")
	if err != nil {
		b.Fatal(err)
	}
	ds := eng.Dataset()
	lo, hi := ds.Span()
	s := bench.RandomPreference(rngFor("nba-1"), 1)
	q := core.Query{K: 1, Tau: (hi - lo) / 7, Start: lo, End: hi, Scorer: s, Algorithm: core.SHop}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.DurableTopK(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables IV-VI: DBMS backend -------------------------------------------

func benchmarkDBMS(b *testing.B, dsName string, n, tauPct, iPct int, hop bool) {
	b.Helper()
	cfg := benchConfig()
	ds, err := bench.DatasetFor(cfg, dsName)
	if err != nil {
		b.Fatal(err)
	}
	if n > 0 && n < ds.Len() {
		ds = ds.Prefix(n)
	}
	db, err := dbms.Load(ds, dbms.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	lo, hi := ds.Span()
	span := hi - lo
	tau := span * int64(tauPct) / 100
	start := hi - span*int64(iPct)/100
	s := bench.RandomPreference(rngFor(dsName), ds.Dims())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := db.Pool.DropAll(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if hop {
			_, _, err = db.DurableTHop(s, 10, tau, start, hi)
		} else {
			_, _, err = db.DurableTBase(s, 10, tau, start, hi)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4DBMSVaryTau(b *testing.B) {
	for _, tau := range []int{10, 30, 50} {
		b.Run(fmt.Sprintf("t-hop/tau=%d", tau), func(b *testing.B) {
			benchmarkDBMS(b, "nba-2", 10_000, tau, 50, true)
		})
		b.Run(fmt.Sprintf("t-base/tau=%d", tau), func(b *testing.B) {
			benchmarkDBMS(b, "nba-2", 10_000, tau, 50, false)
		})
	}
}

func BenchmarkTable5DBMSVaryI(b *testing.B) {
	for _, ipct := range []int{10, 30, 50} {
		b.Run(fmt.Sprintf("t-hop/i=%d", ipct), func(b *testing.B) {
			benchmarkDBMS(b, "nba-2", 10_000, 10, ipct, true)
		})
		b.Run(fmt.Sprintf("t-base/i=%d", ipct), func(b *testing.B) {
			benchmarkDBMS(b, "nba-2", 10_000, 10, ipct, false)
		})
	}
}

func BenchmarkTable6DBMSDatasets(b *testing.B) {
	for _, ds := range []string{"nba-2", "ind-30000", "anti-30000"} {
		b.Run(ds+"/t-hop", func(b *testing.B) { benchmarkDBMS(b, ds, 30_000, 10, 50, true) })
		b.Run(ds+"/t-base", func(b *testing.B) { benchmarkDBMS(b, ds, 30_000, 10, 50, false) })
	}
}

// --- Lemma 4: answer-size scaling -----------------------------------------

func BenchmarkLemma4RPM(b *testing.B) {
	eng, err := bench.EngineFor(benchConfig(), "rpm-40000")
	if err != nil {
		b.Fatal(err)
	}
	ds := eng.Dataset()
	lo, hi := ds.Span()
	span := hi - lo
	s, err := score.NewSingle(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	q := core.Query{K: 10, Tau: span / 10, Start: hi - span/2, End: hi, Scorer: s, Algorithm: core.THop}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.DurableTopK(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -------------------------------------------------------------

func BenchmarkAblationLengthThreshold(b *testing.B) {
	var sink io.Writer = io.Discard
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := bench.Config{Scale: 0.05, Reps: 2, Seed: 1, Quick: true}
			if err := bench.Run("abl-threshold", cfg, sink); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationForestVsStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.Config{Scale: 0.05, Reps: 2, Seed: 1, Quick: true}
		if err := bench.Run("abl-forest", cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNodeBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.Config{Scale: 0.05, Reps: 2, Seed: 1, Quick: true}
		if err := bench.Run("abl-bounds", cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPlanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := bench.Config{Scale: 0.05, Reps: 2, Seed: 1, Quick: true}
		if err := bench.Run("abl-planner", cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions -------------------------------------------------------------

// BenchmarkExtAnchorLeads measures one mid-anchored durable query per lead
// share (the general-anchor extension of §II).
func BenchmarkExtAnchorLeads(b *testing.B) {
	eng, err := bench.EngineFor(benchConfig(), "nba-2")
	if err != nil {
		b.Fatal(err)
	}
	ds := eng.Dataset()
	lo, hi := ds.Span()
	span := hi - lo
	tau := span / 10
	s := bench.RandomPreference(rngFor("anchor"), ds.Dims())
	for _, leadPct := range []int64{0, 50, 100} {
		for _, alg := range []core.Algorithm{core.THop, core.SHop} {
			b.Run(fmt.Sprintf("lead=%d%%/%s", leadPct, alg), func(b *testing.B) {
				q := core.Query{
					K: 10, Tau: tau, Lead: tau * leadPct / 100,
					Start: hi - span/2, End: hi,
					Scorer: s, Algorithm: alg, Anchor: core.General,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.DurableTopK(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExtExprScorers compares native and expression-compiled scorers
// through the full query path.
func BenchmarkExtExprScorers(b *testing.B) {
	eng, err := bench.EngineFor(benchConfig(), "nba-2")
	if err != nil {
		b.Fatal(err)
	}
	ds := eng.Dataset()
	lo, hi := ds.Span()
	span := hi - lo
	scorers := []struct {
		name string
		s    core.Query // only Scorer is taken from here
	}{
		{"native-linear", core.Query{Scorer: score.MustLinear(0.6, 0.4)}},
		{"compiled-linear", core.Query{Scorer: expr.MustCompile("0.6*x0 + 0.4*x1", expr.Options{Dims: 2})}},
		{"compiled-nonlinear", core.Query{Scorer: expr.MustCompile("log1p(x0)*2 + sqrt(max(x1, 0))", expr.Options{Dims: 2})}},
	}
	for _, sc := range scorers {
		b.Run(sc.name, func(b *testing.B) {
			q := core.Query{
				K: 10, Tau: span / 10, Start: hi - span/2, End: hi,
				Scorer: sc.s.Scorer, Algorithm: core.THop,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.DurableTopK(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExprCompile measures expression compilation alone.
func BenchmarkExprCompile(b *testing.B) {
	const src = "0.6*points + 0.3*assists + 2*log1p(rebounds) - min(steals, blocks)"
	opts := expr.Options{Names: []string{"points", "assists", "rebounds", "steals", "blocks"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Compile(src, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExprScore measures one compiled-expression evaluation.
func BenchmarkExprScore(b *testing.B) {
	e := expr.MustCompile("0.6*x0 + 0.3*x1 + 2*log1p(x2)", expr.Options{Dims: 3})
	x := []float64{21, 7, 11}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += e.Score(x)
	}
	_ = sink
}

// --- Bulk scoring fast path --------------------------------------------------

// BenchmarkRangeTopKProbe measures one leaf-scan-heavy range top-k probe —
// the innermost building block every durable strategy issues hundreds of
// times per query — with bulk vs scalar scoring and a shared scratch.
// benchstat bulk vs scalar quantifies the columnar fast path.
func BenchmarkRangeTopKProbe(b *testing.B) {
	cfg := benchConfig()
	for _, dsName := range []string{"nba-2", "network-5"} {
		eng, err := bench.EngineFor(cfg, dsName)
		if err != nil {
			b.Fatal(err)
		}
		ds := eng.Dataset()
		idx := topk.Build(ds, bench.EngineOptions().Index)
		lin := bench.RandomPreference(rngFor(dsName), ds.Dims())
		n := ds.Len()
		span := n / 10
		for _, sc := range []struct {
			name   string
			scorer score.Scorer
		}{{"bulk", lin}, {"scalar", bench.Scalarized{S: lin}}} {
			b.Run(fmt.Sprintf("%s/%s", dsName, sc.name), func(b *testing.B) {
				scr := topk.GetScratch()
				defer topk.PutScratch(scr)
				var dst []topk.Item
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					lo := (i * 131) % (n - span)
					dst = idx.QueryRangeInto(sc.scorer, 10, lo, lo+span, scr, dst)
				}
			})
		}
	}
}

// BenchmarkDurableBulkVsScalar runs a full durable query with and without
// the bulk-scoring capability, isolating the end-to-end effect of the
// columnar fast path on the paper's algorithms.
func BenchmarkDurableBulkVsScalar(b *testing.B) {
	eng, err := bench.EngineFor(benchConfig(), "nba-2")
	if err != nil {
		b.Fatal(err)
	}
	ds := eng.Dataset()
	lin := bench.RandomPreference(rngFor("nba-2"), ds.Dims())
	for _, alg := range []core.Algorithm{core.THop, core.SHop} {
		for _, sc := range []struct {
			name   string
			scorer score.Scorer
		}{{"bulk", lin}, {"scalar", bench.Scalarized{S: lin}}} {
			b.Run(fmt.Sprintf("%s/%s", alg, sc.name), func(b *testing.B) {
				q := bench.QuerySpec{K: 10, TauPct: 10, IPct: 50}.Materialize(ds, sc.scorer, alg)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.DurableTopK(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPlannerChoose measures one cost-model evaluation.
func BenchmarkPlannerChoose(b *testing.B) {
	in := planner.Inputs{
		N: 1_000_000, Dims: 5, NI: 500_000,
		K: 10, Tau: 100_000, Window: 500_000, Monotone: true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = planner.Choose(in)
	}
}
