// Network intrusion triage (paper §I): score sessions by a weighted
// combination of traffic features and surface the ones that were top-k
// anomalies relative to the surrounding traffic for a sustained window —
// durable top-k as an analyst's shortlist generator.
package main

import (
	"fmt"
	"log"

	durable "repro"
	"repro/internal/datagen"
)

func main() {
	// 200k synthetic sessions with 10 heavy-tailed, MinMax-normalized
	// features (duration, bytes, login counters, error rates, ...).
	ds := datagen.Network(99, 200_000, 10)
	eng, err := durable.Open(durable.FromDataset(ds))
	if err != nil {
		log.Fatal(err)
	}

	// Analyst preference: emphasize transfer volume (x1), login counters
	// (x2) and connection duration (x0); mild weight elsewhere.
	w := []float64{3, 5, 4, 1, 1, 1, 2, 1, 1, 1}
	scorer, err := durable.NewLinear(w)
	if err != nil {
		log.Fatal(err)
	}

	lo, hi := ds.Span()
	span := hi - lo
	res, err := eng.DurableTopK(durable.Query{
		K:             5,
		Tau:           span / 100, // sustained against ~1% of the history around it
		Start:         lo + span/2,
		End:           hi,
		Scorer:        scorer,
		Algorithm:     durable.SHop,
		WithDurations: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flagged %d durable top-5 sessions out of %d in the interval (%.3f%%)\n",
		len(res.Records), ds.Len()/2, 100*float64(len(res.Records))/float64(ds.Len()/2))
	fmt.Printf("evaluation: %d top-k queries in %v\n\n", res.Stats.TopKQueries(), res.Stats.Elapsed)

	fmt.Println("top shortlist (score = weighted anomaly, durability in ticks):")
	shown := 0
	for i := len(res.Records) - 1; i >= 0 && shown < 10; i-- {
		r := res.Records[i]
		fmt.Printf("  session %-7d t=%-7d score=%.3f durable for %d ticks\n",
			r.ID, r.Time, r.Score, r.MaxDuration)
		shown++
	}

	// The same query with a different preference vector needs no new index:
	// the scoring function is a query-time parameter.
	alt, err := durable.NewLinear([]float64{1, 1, 1, 1, 1, 5, 5, 5, 1, 1})
	if err != nil {
		log.Fatal(err)
	}
	res2, err := eng.DurableTopK(durable.Query{
		K: 5, Tau: span / 100, Start: lo + span/2, End: hi, Scorer: alt,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-ranked with an error-rate-focused preference: %d sessions (no re-indexing)\n",
		len(res2.Records))
}
