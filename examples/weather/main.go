// Weather example (paper §I): "an extreme cold wave ... brought the coldest
// temperatures in the past 20 years" — a durable top-k query over daily
// minimum temperatures with a negated-temperature ranking, plus the bulk
// durability profile for an all-time "records that stood the test of time"
// report.
package main

import (
	"fmt"
	"log"

	durable "repro"
	"repro/internal/datagen"
)

func main() {
	const years = 40
	days := int(365.25 * years)
	ds := datagen.Weather(19, days)
	eng, err := durable.Open(durable.FromDataset(ds))
	if err != nil {
		log.Fatal(err)
	}

	// Rank by coldness: f(p) = -temperature. The negative weight makes the
	// scorer non-monotone, which the tree index handles via MBR bounds (only
	// S-Band requires monotonicity).
	coldness := durable.MustLinear(-1)

	lo, hi := ds.Span()
	twentyYears := int64(365.25 * 20)
	res, err := eng.DurableTopK(durable.Query{
		K:             1,
		Tau:           twentyYears,
		Start:         lo + twentyYears, // only days with a full 20-year lookback
		End:           hi,
		Scorer:        coldness,
		WithDurations: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("days whose low was the coldest of the preceding 20 years: %d (of %d candidate days)\n\n",
		len(res.Records), days-int(twentyYears))
	for _, r := range res.Records {
		year := 1986 + int(float64(r.Time)/365.25)
		fmt.Printf("  day %-6d (~%d): %+.1f°C — coldest in %.1f years\n",
			r.Time, year, -r.Score, float64(r.MaxDuration)/365.25)
	}

	// The all-time report: which days stayed "coldest since ..." longest?
	top, err := eng.MostDurable(1, coldness, durable.LookBack, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall-time most durable cold records:")
	for _, r := range top {
		suffix := fmt.Sprintf("unbeaten for %.1f years of prior history", float64(r.Duration)/365.25)
		if r.FullHistory {
			suffix = "coldest of the entire record"
		}
		fmt.Printf("  day %-6d %+.1f°C — %s\n", r.Time, -r.Score, suffix)
	}
}
