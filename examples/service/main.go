// Example service demonstrates the client/server deployment mode: a
// durserved-style server hosting a dataset in one goroutine, and a client
// exploring it over TCP — listing datasets, running durable top-k queries
// with both weight vectors and scoring expressions, asking the planner to
// explain itself, and flipping query parameters without ever rebuilding an
// index.
//
// Run with:
//
//	go run ./examples/service
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/wire"
)

func main() {
	// --- server side -----------------------------------------------------
	srv := wire.NewServer(nil)
	ds := datagen.NBA(7, 20_000)
	games, err := ds.Project([]int{0, 1, 2}) // points, assists, rebounds
	if err != nil {
		log.Fatal(err)
	}
	err = srv.Add("games", games, []string{"points", "assists", "rebounds"}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0") // ephemeral port
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("server listening on %s\n\n", ln.Addr())

	// --- client side -------------------------------------------------------
	cl, err := wire.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	infos, err := cl.Datasets()
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range infos {
		fmt.Printf("dataset %q: %d records x %d attrs %v, time [%d, %d]\n",
			d.Name, d.Len, d.Dims, d.Attrs, d.Start, d.End)
	}

	span := infos[0].End - infos[0].Start
	tau := span / 10

	// 1. A linear preference query: who led scoring+playmaking for a tenth
	// of recorded history?
	recs, st, err := cl.Query(wire.Request{
		Dataset: "games",
		QuerySpec: wire.QuerySpec{
			K: 3, Tau: tau,
			Weights: []float64{1, 0.7, 0},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlinear preference (1, 0.7, 0), k=3, tau=%d: %d durable records (alg=%s, %d probes)\n",
		tau, len(recs), st.Algorithm, st.CheckQueries+st.FindQueries+st.MaintQueries)
	for _, r := range head(recs, 3) {
		fmt.Printf("  id=%d time=%d score=%.1f\n", r.ID, r.Time, r.Score)
	}

	// 2. The same exploration with a non-linear scoring expression —
	// compiled server-side against the dataset's column names.
	recs, st, err = cl.Query(wire.Request{
		Dataset: "games",
		QuerySpec: wire.QuerySpec{
			K: 3, Tau: tau,
			Expr:          "points + 6*log1p(assists) + 2*sqrt(max(rebounds, 0))",
			WithDurations: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexpression scorer, k=3, tau=%d: %d durable records (alg=%s)\n",
		tau, len(recs), st.Algorithm)
	for _, r := range head(recs, 3) {
		fmt.Printf("  id=%d time=%d score=%.1f stayed-on-top-for=%d\n",
			r.ID, r.Time, r.Score, r.MaxDuration)
	}

	// 3. Ask the server-side planner why it picked its strategy.
	plan, err := cl.Explain(wire.Request{
		Dataset:   "games",
		QuerySpec: wire.QuerySpec{K: 3, Tau: tau, Weights: []float64{1, 0.7, 0}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanner explanation:\n%s", plan)

	// 4. Mid-anchored windows over the wire: records that dominated the
	// surrounding window, half before and half after their arrival.
	recs, _, err = cl.Query(wire.Request{
		Dataset: "games",
		QuerySpec: wire.QuerySpec{
			K: 1, Tau: tau, Lead: tau / 2, Anchor: "general",
			Weights: []float64{1, 0, 0},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncentered windows (lead=tau/2), k=1: %d records whose scoring peak\n", len(recs))
	fmt.Println("dominated both the run-up and the aftermath of their arrival")

	// 5. The "stood the test of time" report: which scoring performances
	// kept their top-1 rank the longest?
	champs, err := cl.MostDurable(wire.Request{
		Dataset:   "games",
		QuerySpec: wire.QuerySpec{K: 1, N: 3, Weights: []float64{1, 0, 0}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall-time most durable top-1 scoring records:")
	for _, r := range champs {
		fmt.Printf("  id=%d time=%d score=%.1f stayed best for %d ticks\n",
			r.ID, r.Time, r.Score, r.MaxDuration)
	}
}

func head(recs []wire.Record, n int) []wire.Record {
	if len(recs) < n {
		return recs
	}
	return recs[:n]
}
