// Quickstart: build a small dataset, run durable top-k queries with both
// window anchors, compare algorithms, and report maximum durabilities.
package main

import (
	"fmt"
	"log"
	"math/rand"

	durable "repro"
)

func main() {
	// 2000 records, two attributes, one record per tick.
	rng := rand.New(rand.NewSource(7))
	n := 2000
	times := make([]int64, n)
	attrs := make([][]float64, n)
	for i := 0; i < n; i++ {
		times[i] = int64(i + 1)
		attrs[i] = []float64{rng.Float64() * 100, rng.Float64() * 10}
	}
	ds, err := durable.NewDataset(times, attrs)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := durable.Open(durable.FromDataset(ds)) // builds the range top-k index
	if err != nil {
		log.Fatal(err)
	}

	// f(p) = 1.0*x0 + 5.0*x1; k=3; 300-tick durability windows.
	q := durable.Query{
		K:             3,
		Tau:           300,
		Start:         times[0],
		End:           times[n-1],
		Scorer:        durable.MustLinear(1.0, 5.0),
		WithDurations: true,
	}
	res, err := eng.DurableTopK(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("durable top-%d records with tau=%d (looking back): %d results\n", q.K, q.Tau, len(res.Records))
	for i, r := range res.Records {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(res.Records)-5)
			break
		}
		fmt.Printf("  t=%-5d score=%6.1f stayed top-%d for %d ticks\n", r.Time, r.Score, q.K, r.MaxDuration)
	}
	fmt.Printf("stats: %d top-k queries in %v (%s)\n\n",
		res.Stats.TopKQueries(), res.Stats.Elapsed, res.Stats.Algorithm)

	// The looking-ahead anchor asks: which records were never beaten by the
	// NEXT tau ticks?
	q.Anchor = durable.LookAhead
	q.WithDurations = false
	ahead, err := eng.DurableTopK(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("looking ahead instead: %d results\n\n", len(ahead.Records))

	// All five algorithms return identical answers; pick by workload.
	q.Anchor = durable.LookBack
	for _, alg := range durable.Algorithms() {
		q.Algorithm = alg
		r, err := eng.DurableTopK(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s %3d results  %4d top-k queries  %v\n",
			alg, len(r.Records), r.Stats.TopKQueries(), r.Stats.Elapsed)
	}
}
