// Streaming extension: monitor durable top-k records as data arrives.
//
// The paper's building block supports updates (§II); this repository
// implements them with an appendable forest index (logarithmic method).
// Because a looking-back durability window ends at the record itself, a new
// arrival's durability is decided immediately with one range top-k query
// against the forest — no batch rebuild, no re-scan.
//
// The second half switches to the dedicated stream monitor, which answers
// the same look-back question in O(log w) per arrival without any index,
// and additionally confirms look-ahead durability ("has yet to be broken")
// exactly when each record's forward window closes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	durable "repro"
	"repro/internal/topk"
)

func main() {
	const (
		k   = 3
		tau = int64(2000)
	)
	scorer := durable.MustLinear(0.7, 0.3)
	forest := topk.NewForest(2, topk.Options{})
	rng := rand.New(rand.NewSource(42))

	fmt.Printf("streaming 50000 records; flagging arrivals that enter the durable top-%d (tau=%d)\n\n", k, tau)
	flagged := 0
	var now int64
	for i := 0; i < 50_000; i++ {
		now += int64(1 + rng.Intn(3))
		attrs := []float64{rng.Float64() * 100, rng.Float64() * 100}
		// Occasional bursts of exceptional records.
		if rng.Float64() < 0.001 {
			attrs[0] += 150
		}
		if err := forest.Append(now, attrs); err != nil {
			log.Fatal(err)
		}
		// One top-k query over [now-tau, now] decides durability of the
		// arrival (fewer than k strictly-higher scores in its own window).
		items := forest.Query(scorer, k, now-tau, now)
		sc := scorer.Score(attrs)
		if len(items) < k || sc >= items[k-1].Score {
			flagged++
			if flagged <= 10 || flagged%500 == 0 {
				fmt.Printf("  t=%-8d score=%7.2f is top-%d of its trailing window (flag #%d)\n",
					now, sc, k, flagged)
			}
		}
	}
	fmt.Printf("\nflagged %d of 50000 arrivals; forest: %d trees, %d rebuilds\n",
		flagged, forest.Trees(), forest.Rebuilds())

	// Cross-check the stream decisions against the offline engine.
	times := make([]int64, forest.Len())
	attrs := make([][]float64, forest.Len())
	for i := 0; i < forest.Len(); i++ {
		times[i] = forest.Time(i)
		attrs[i] = forest.Attrs(i)
	}
	ds, err := durable.NewDataset(times, attrs)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := durable.Open(durable.FromDataset(ds))
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := ds.Span()
	res, err := eng.DurableTopK(durable.Query{K: k, Tau: tau, Start: lo, End: hi, Scorer: scorer})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Records) != flagged {
		log.Fatalf("stream flagged %d but offline found %d", flagged, len(res.Records))
	}
	fmt.Println("cross-checked: streaming decisions match the offline durable top-k answer")

	// --- the dedicated stream monitor -------------------------------------
	// Same decisions without building any index, plus delayed look-ahead
	// confirmations: a confirmation with Durable=true means the record was
	// beaten by fewer than k later arrivals for its whole forward window.
	mon, err := durable.NewMonitor(k, tau, scorer, durable.MonitorOptions{TrackAhead: true})
	if err != nil {
		log.Fatal(err)
	}
	liveFlagged, unbroken := 0, 0
	for i := 0; i < ds.Len(); i++ {
		dec, confirms, err := mon.Observe(ds.Time(i), ds.Attrs(i))
		if err != nil {
			log.Fatal(err)
		}
		if dec.Durable {
			liveFlagged++
		}
		for _, c := range confirms {
			if c.Durable {
				unbroken++
			}
		}
	}
	for _, c := range mon.Finish() {
		if c.Durable {
			unbroken++
		}
	}
	if liveFlagged != flagged {
		log.Fatalf("monitor flagged %d but forest flagged %d", liveFlagged, flagged)
	}
	fmt.Printf("\nmonitor replay: %d instant look-back flags (identical), %d records whose\n", liveFlagged, unbroken)
	fmt.Printf("score was never broken during the %d ticks after their arrival\n", tau)
}
