// NBA case study (paper Example I.1 / Fig. 1): find rebound performances
// that stood out as the top record over a five-year span, and contrast the
// durable top-k answer with tumbling- and sliding-window top-k.
package main

import (
	"fmt"
	"log"

	durable "repro"
	"repro/internal/datagen"
	"repro/internal/windows"
)

func main() {
	// Synthetic 36-season box-score history (see DESIGN.md §2); rank by
	// rebounds only, as in the paper's case study.
	full := datagen.NBA(2024, 120_000)
	ds, err := full.Project([]int{datagen.NBAReb})
	if err != nil {
		log.Fatal(err)
	}
	q, err := durable.Open(durable.FromDataset(ds))
	if err != nil {
		log.Fatal(err)
	}
	eng := q.(*durable.Engine) // concrete engine: the windows helpers need eng.Index()

	lo, hi := ds.Span()
	span := hi - lo
	tau := span * 5 / 36 // a five-year window of a 36-season history
	scorer, err := durable.NewSingleAttr(0, 1)
	if err != nil {
		log.Fatal(err)
	}

	res, err := eng.DurableTopK(durable.Query{
		K: 1, Tau: tau, Start: lo, End: hi,
		Scorer: scorer, WithDurations: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== durable top-1 rebound performances (5-season windows) — %d records ===\n", len(res.Records))
	for _, r := range res.Records {
		season := 1983 + int(36*float64(r.Time-lo)/float64(span+1))
		fmt.Printf("  season %d: %2.0f rebounds — best of the preceding 5 seasons", season, r.Score)
		if r.FullHistory {
			fmt.Printf(" (and of all recorded history)")
		} else if r.MaxDuration > tau {
			fmt.Printf(" (actually unbeaten for %.1f seasons)", 36*float64(r.MaxDuration)/float64(span+1))
		}
		fmt.Println()
	}

	// Tumbling windows: the answer changes when the grid shifts.
	gridA := windows.Tumbling(eng.Index(), scorer, 1, tau, lo, lo, hi)
	gridB := windows.Tumbling(eng.Index(), scorer, 1, tau, lo+tau/2, lo, hi)
	fmt.Printf("\n=== tumbling-window top-1 ===\n")
	fmt.Printf("  grid anchored at t0:        %d champions\n", len(gridA))
	fmt.Printf("  grid shifted half a window: %d champions\n", len(gridB))
	fmt.Printf("  champions present in grid A but lost after the shift: %d (placement sensitivity)\n",
		champDiff(gridA, gridB))

	// Sliding windows: every placement over the same suffix (placements with
	// a full tau-length lookback), typically far more distinct results.
	sliding := windows.Sliding(ds, eng.Index(), scorer, 1, tau+1, lo+tau, hi)
	union := windows.UnionIDs(sliding)
	durableSuffix := 0
	for _, r := range res.Records {
		if r.Time >= lo+tau {
			durableSuffix++
		}
	}
	fmt.Printf("\n=== sliding-window top-1 (same interval) ===\n")
	fmt.Printf("  %d distinct records across all placements vs %d durable records\n",
		len(union), durableSuffix)
	fmt.Println("\nThe durable answer reads consistently as \"best of the past 5 seasons\" —")
	fmt.Println("no cherry-picked window grid, no result churn as the window slides.")
}

func champDiff(a, b []windows.WindowResult) int {
	inB := map[int32]bool{}
	for _, w := range b {
		if len(w.Items) > 0 {
			inB[w.Items[0].ID] = true
		}
	}
	diff := 0
	for _, w := range a {
		if len(w.Items) > 0 && !inB[w.Items[0].ID] {
			diff++
		}
	}
	return diff
}
