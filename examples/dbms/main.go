// DBMS example (paper §VI-C): load a dataset into the embedded
// page-structured engine and compare the T-Hop and T-Base stored procedures
// on wall time and buffer-pool page reads.
package main

import (
	"fmt"
	"log"

	durable "repro"
	"repro/internal/datagen"
	"repro/internal/dbms"
)

func main() {
	ds := datagen.IND(3, 120_000, 2)
	db, err := dbms.Load(ds, dbms.Options{PoolPages: 256})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Printf("loaded %d records into %d heap pages (8 KiB each), summary index: %d nodes\n",
		ds.Len(), db.Table.NumPages(), db.Index.NumNodes())
	fmt.Printf("buffer pool: %d frames (deliberately smaller than the data)\n\n", db.Pool.Capacity())

	scorer := durable.MustLinear(0.6, 0.4)
	lo, hi := ds.Span()
	span := hi - lo
	k, tau := 10, span/10
	start := hi - span/2

	hopIDs, hopStats, err := db.DurableTHop(scorer, k, tau, start, hi)
	if err != nil {
		log.Fatal(err)
	}
	baseIDs, baseStats, err := db.DurableTBase(scorer, k, tau, start, hi)
	if err != nil {
		log.Fatal(err)
	}
	if len(hopIDs) != len(baseIDs) {
		log.Fatalf("procedures disagree: %d vs %d results", len(hopIDs), len(baseIDs))
	}

	fmt.Printf("durable top-%d over the most recent half, tau=%d: %d records\n\n", k, tau, len(hopIDs))
	fmt.Printf("%-8s %12s %12s %12s\n", "proc", "elapsed", "page reads", "topk queries")
	fmt.Printf("%-8s %12v %12d %12d\n", "t-hop", hopStats.Elapsed, hopStats.PageReads, hopStats.TopKQueries)
	fmt.Printf("%-8s %12v %12d %12d\n", "t-base", baseStats.Elapsed, baseStats.PageReads, baseStats.TopKQueries)
	fmt.Printf("\nt-hop read %.1fx fewer pages than the full sliding pass\n",
		float64(baseStats.PageReads)/float64(max(1, hopStats.PageReads)))

	// Cross-check against the in-memory engine.
	eng, err := durable.Open(durable.FromDataset(ds))
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.DurableTopK(durable.Query{K: k, Tau: tau, Start: start, End: hi, Scorer: scorer})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Records) != len(hopIDs) {
		log.Fatalf("DBMS and in-memory answers disagree: %d vs %d", len(hopIDs), len(res.Records))
	}
	fmt.Println("cross-checked: DBMS answers match the in-memory engine")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
