// Finance example (paper §I): "the P/E of this stock last Friday was among
// the top-5 P/Es for more than 30 days" — durable top-k over a daily stream
// of stock observations.
package main

import (
	"fmt"
	"log"

	durable "repro"
	"repro/internal/datagen"
)

func main() {
	const (
		tickers = 150
		days    = 750 // ~3 trading years
	)
	// Each record is one (ticker, day) observation with attributes
	// [P/E, volume, momentum]; ticks advance per observation, so one day
	// spans `tickers` ticks.
	ds := datagen.Stocks(5, tickers, days)
	eng, err := durable.Open(durable.FromDataset(ds))
	if err != nil {
		log.Fatal(err)
	}

	scorer, err := durable.NewSingleAttr(0, 3) // rank by P/E
	if err != nil {
		log.Fatal(err)
	}

	lo, hi := ds.Span()
	window := int64(tickers * 30) // 30 trading days
	res, err := eng.DurableTopK(durable.Query{
		K:             5,
		Tau:           window,
		Start:         hi - int64(tickers*90), // the last quarter
		End:           hi,
		Scorer:        scorer,
		WithDurations: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("observations in the last quarter whose P/E was top-5 for the prior 30 trading days: %d\n\n",
		len(res.Records))
	shown := 0
	for i := len(res.Records) - 1; i >= 0 && shown < 8; i-- {
		r := res.Records[i]
		day := int((r.Time - lo) / tickers)
		ticker := int((r.Time - lo) % tickers)
		durDays := r.MaxDuration / tickers
		fmt.Printf("  day %-4d ticker #%-4d P/E=%-7.1f top-5 for the past %d trading days",
			day, ticker, r.Score, durDays)
		if r.FullHistory {
			fmt.Print(" (entire history)")
		}
		fmt.Println()
		shown++
	}

	// Brokers look forward too: which observations were never pushed out of
	// the top-5 by the NEXT 30 days?
	ahead, err := eng.DurableTopK(durable.Query{
		K: 5, Tau: window, Start: hi - int64(tickers*90), End: hi - window,
		Scorer: scorer, Anchor: durable.LookAhead,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlook-ahead variant (unbeaten by the following 30 days): %d observations\n",
		len(ahead.Records))
}
