package durable_test

import (
	"fmt"
	"log"

	durable "repro"
)

// scoreboard is a tiny deterministic dataset: one attribute, ten records.
func scoreboard() *durable.Dataset {
	ds, err := durable.NewDataset(
		[]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		[][]float64{{31}, {24}, {18}, {27}, {22}, {35}, {21}, {20}, {28}, {26}},
	)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}

// ExampleEngine_DurableTopK finds the records that were top-1 over the
// three ticks leading up to their own arrival.
func ExampleEngine_DurableTopK() {
	eng := durable.New(scoreboard())
	res, err := eng.DurableTopK(durable.Query{
		K:      1,
		Tau:    3,
		Start:  1,
		End:    10,
		Scorer: durable.MustLinear(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Records {
		fmt.Printf("t=%d score=%.0f\n", r.Time, r.Score)
	}
	// Output:
	// t=1 score=31
	// t=6 score=35
}

// ExampleEngine_MostDurable reports the records that kept their top-1 rank
// the longest.
func ExampleEngine_MostDurable() {
	eng := durable.New(scoreboard())
	top, err := eng.MostDurable(1, durable.MustLinear(1), durable.LookBack, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range top {
		if r.FullHistory {
			fmt.Printf("t=%d score=%.0f top-1 over all history\n", r.Time, r.Score)
		} else {
			fmt.Printf("t=%d score=%.0f top-1 for %d ticks\n", r.Time, r.Score, r.Duration)
		}
	}
	// Output:
	// t=6 score=35 top-1 over all history
	// t=1 score=31 top-1 over all history
}

// ExampleQuery_lookAhead asks the forward-looking question instead: which
// records were never beaten during the following three ticks?
func ExampleQuery_lookAhead() {
	eng := durable.New(scoreboard())
	res, err := eng.DurableTopK(durable.Query{
		K:      1,
		Tau:    3,
		Start:  1,
		End:    7,
		Scorer: durable.MustLinear(1),
		Anchor: durable.LookAhead,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Records {
		fmt.Printf("t=%d score=%.0f\n", r.Time, r.Score)
	}
	// Output:
	// t=1 score=31
	// t=6 score=35
}

// ExampleCompileScorer ranks by a user-written scoring expression; the
// compiler derives monotonicity and index pruning bounds automatically.
func ExampleCompileScorer() {
	scorer, err := durable.CompileScorer("2*points + rebounds", 2, []string{"points", "rebounds"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("monotone:", scorer.IsMonotone())
	fmt.Println("score:", scorer.Score([]float64{30, 10}))
	// Output:
	// monotone: true
	// score: 70
}

// ExampleQuery_general uses a mid-anchored durability window: each record is
// judged over one tick before and two ticks after its own arrival.
func ExampleQuery_general() {
	eng := durable.New(scoreboard())
	res, err := eng.DurableTopK(durable.Query{
		K:      1,
		Tau:    3,
		Lead:   2,
		Start:  1,
		End:    10,
		Scorer: durable.MustLinear(1),
		Anchor: durable.General,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Records {
		fmt.Printf("t=%d score=%.0f\n", r.Time, r.Score)
	}
	// Output:
	// t=1 score=31
	// t=6 score=35
	// t=9 score=28
}

// ExampleEngine_Explain shows the planner's reasoning for one query.
func ExampleEngine_Explain() {
	eng := durable.New(scoreboard())
	plan, err := eng.Explain(durable.Query{
		K: 1, Tau: 3, Start: 1, End: 10, Scorer: durable.MustLinear(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chosen:", plan.Chosen)
	fmt.Println("strategies considered:", len(plan.Estimates))
	// Output:
	// chosen: t-base
	// strategies considered: 5
}
