package durable

import (
	"repro/internal/store"
	"repro/internal/wal"
)

// Store is a crash-safe live+sharded engine: every acknowledged append is
// framed into a write-ahead log before the engine applies it, sealed tail
// shards are checkpointed into page-structured files keyed to the seal
// lifecycle, and Recover reconstructs the full acknowledged stream after a
// process kill. Query it through Store.Engine (the usual Querier contract);
// append through Store.Append or Store.AppendBatch.
type Store = store.Store

// StoreOptions configures a durable store: the WAL fsync policy and segment
// sizing plus the engine/live/shard options of NewLiveSharded.
type StoreOptions = store.Options

// StoreRow is one record of a durable batch append.
type StoreRow = store.Row

// RecoveryStats reports what Recover reconstructed: rows bulk-loaded from
// sealed-shard checkpoints (zero WAL replay) versus rows replayed from the
// tail WAL.
type RecoveryStats = store.RecoveryStats

// SyncPolicy selects when WAL commits reach stable storage.
type SyncPolicy = wal.SyncPolicy

// WAL fsync policies: SyncAlways fsyncs every commit (an acknowledged
// append survives any crash), SyncInterval fsyncs on a background ticker
// (bounded loss window), SyncNone leaves flushing to the OS.
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNone     = wal.SyncNone
)

// ParseSyncPolicy converts "always", "interval" or "none" to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// Recover opens (or creates) a crash-safe live+sharded store in dir for
// d-dimensional records. Existing state is recovered exactly: checkpointed
// sealed shards load in bulk from their page files, the tail WAL is
// repaired (a torn final record is truncated) and replayed through the
// normal append path, and the store resumes ingestion at the exact next
// row. The recovered engine answers every query identically to one that
// never crashed, over the durable prefix of the stream.
func Recover(dir string, d int, opts StoreOptions) (*Store, error) {
	return store.Open(dir, d, opts)
}
