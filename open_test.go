package durable_test

import (
	"testing"

	durable "repro"
)

// TestOpenFlavors: each source/option combination yields the matching
// concrete engine, and it answers like its historical constructor.
func TestOpenFlavors(t *testing.T) {
	ds := buildDataset(t, 300)
	q := durable.Query{K: 2, Tau: 10, Start: 1, End: 1 << 30, Scorer: durable.MustLinear(1, 0.5)}
	want, err := durable.New(ds).DurableTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSame := func(eng durable.Querier) {
		t.Helper()
		res, err := eng.DurableTopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != len(want.Records) {
			t.Fatalf("%d records, want %d", len(res.Records), len(want.Records))
		}
		for i, r := range res.Records {
			if r.ID != want.Records[i].ID {
				t.Fatalf("record %d: id %d, want %d", i, r.ID, want.Records[i].ID)
			}
		}
	}

	batch, err := durable.Open(durable.FromDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := batch.(*durable.Engine); !ok {
		t.Fatalf("FromDataset yielded %T, want *Engine", batch)
	}
	assertSame(batch)

	sharded, err := durable.Open(durable.FromDataset(ds),
		durable.WithSharding(durable.ShardOptions{Shards: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sharded.(*durable.ShardedEngine); !ok {
		t.Fatalf("WithSharding yielded %T, want *ShardedEngine", sharded)
	}
	assertSame(sharded)

	live, err := durable.Open(durable.FromStream(2))
	if err != nil {
		t.Fatal(err)
	}
	le, ok := live.(*durable.LiveEngine)
	if !ok {
		t.Fatalf("FromStream yielded %T, want *LiveEngine", live)
	}
	liveSharded, err := durable.Open(durable.FromStream(2),
		durable.WithLiveSharding(durable.LiveShardOptions{SealRows: 64}))
	if err != nil {
		t.Fatal(err)
	}
	lse, ok := liveSharded.(*durable.LiveShardedEngine)
	if !ok {
		t.Fatalf("WithLiveSharding yielded %T, want *LiveShardedEngine", liveSharded)
	}
	for i := 0; i < ds.Len(); i++ {
		if _, _, err := le.Append(ds.Time(i), ds.Attrs(i)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := lse.Append(ds.Time(i), ds.Attrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	assertSame(le)
	assertSame(lse)
}

func TestOpenRejectsIncoherentOptions(t *testing.T) {
	ds := buildDataset(t, 10)
	bad := [][]durable.OpenOption{
		{}, // no source
		{durable.FromDataset(ds), durable.FromStream(2)},
		{durable.FromDataset(ds), durable.WithLiveOptions(durable.LiveOptions{})},
		{durable.FromDataset(ds), durable.WithLiveSharding(durable.LiveShardOptions{})},
		{durable.FromStream(2), durable.WithSharding(durable.ShardOptions{Shards: 4})},
	}
	for i, opts := range bad {
		if _, err := durable.Open(opts...); err == nil {
			t.Errorf("combination %d accepted", i)
		}
	}
}
